"""Tests for cost tables, the measurement campaign, and the Cost Manager."""

import numpy as np
import pytest

from repro.core.actions import (
    AddReplica,
    IncreaseCpu,
    MigrateVm,
    NullAction,
    PowerOffHost,
    PowerOnHost,
)
from repro.costmodel.measurement import MeasurementCampaign
from repro.costmodel.table import CostEntry, CostTable


# -- CostTable ---------------------------------------------------------------


def entry(duration=10.0):
    return CostEntry(
        duration=duration,
        primary_rt_delta=0.1,
        colocated_rt_delta=0.04,
        power_delta_watts=12.0,
    )


def test_nearest_workload_lookup():
    table = CostTable()
    table.add("migrate", "db", 10.0, entry(10.0))
    table.add("migrate", "db", 50.0, entry(50.0))
    table.add("migrate", "db", 100.0, entry(100.0))
    assert table.lookup("migrate", "db", 0.0).duration == 10.0
    assert table.lookup("migrate", "db", 28.0).duration == 10.0
    assert table.lookup("migrate", "db", 32.0).duration == 50.0
    assert table.lookup("migrate", "db", 500.0).duration == 100.0


def test_tier_fallback_to_dash():
    table = CostTable()
    table.add("power_on", "-", 0.0, entry(90.0))
    assert table.lookup("power_on", "db", 50.0).duration == 90.0


def test_missing_entry_raises():
    with pytest.raises(KeyError):
        CostTable().lookup("migrate", "db", 10.0)


def test_duplicate_workload_rejected():
    table = CostTable()
    table.add("migrate", "db", 10.0, entry())
    with pytest.raises(ValueError):
        table.add("migrate", "db", 10.0, entry())


def test_entries_sorted_and_len():
    table = CostTable()
    table.add("migrate", "db", 50.0, entry())
    table.add("migrate", "db", 10.0, entry())
    assert table.workload_levels("migrate", "db") == (10.0, 50.0)
    assert len(table) == 2
    assert [w for w, _ in table.entries("migrate", "db")] == [10.0, 50.0]


def test_entry_validation():
    with pytest.raises(ValueError):
        CostEntry(-1.0, 0.0, 0.0, 0.0)
    table = CostTable()
    with pytest.raises(ValueError):
        table.add("migrate", "db", -5.0, entry())


# -- measurement campaign -------------------------------------------------------


def test_campaign_covers_all_action_families(cost_table):
    kinds = {kind for kind, _ in cost_table.keys()}
    assert kinds == {
        "migrate",
        "increase_cpu",
        "decrease_cpu",
        "add_replica",
        "remove_replica",
        "power_on",
        "power_off",
    }


def test_campaign_costs_grow_with_workload(cost_table):
    levels = cost_table.workload_levels("migrate", "db")
    low = cost_table.lookup("migrate", "db", levels[0])
    high = cost_table.lookup("migrate", "db", levels[-1])
    assert high.duration > low.duration
    assert high.primary_rt_delta > low.primary_rt_delta


def test_campaign_mysql_replica_is_slowest_action(cost_table):
    peak = 100.0
    add_db = cost_table.lookup("add_replica", "db", peak).duration
    migrate_db = cost_table.lookup("migrate", "db", peak).duration
    assert add_db > migrate_db
    assert add_db > 50.0  # paper Fig. 7c: ~70 s at peak


def test_campaign_colocated_delta_smaller_than_primary(cost_table):
    for kind, tier in cost_table.keys():
        if kind in ("power_on", "power_off", "increase_cpu", "decrease_cpu"):
            continue
        for _, measured in cost_table.entries(kind, tier):
            assert measured.colocated_rt_delta <= measured.primary_rt_delta


def test_campaign_validation(apps, limits):
    with pytest.raises(ValueError):
        MeasurementCampaign(
            apps.get("RUBiS-1"),
            apps.get("RUBiS-2"),
            host_ids=["only-one"],
            limits=limits,
        )
    with pytest.raises(ValueError):
        MeasurementCampaign(
            apps.get("RUBiS-1"),
            apps.get("RUBiS-2"),
            host_ids=["a", "b"],
            limits=limits,
            placements_per_point=0,
        )


# -- CostManager --------------------------------------------------------------------


def test_null_action_is_free(cost_manager, base_configuration):
    predicted = cost_manager.predict(NullAction(), base_configuration, {})
    assert predicted.duration == 0.0
    assert predicted.power_delta_watts == 0.0


def test_migration_prediction_uses_primary_workload(
    cost_manager, base_configuration
):
    low = cost_manager.predict(
        MigrateVm("RUBiS-1-db-0", "host-0"),
        base_configuration,
        {"RUBiS-1": 12.5, "RUBiS-2": 100.0},
    )
    high = cost_manager.predict(
        MigrateVm("RUBiS-1-db-0", "host-0"),
        base_configuration,
        {"RUBiS-1": 100.0, "RUBiS-2": 12.5},
    )
    assert high.duration > low.duration
    assert high.rt_delta["RUBiS-1"] > low.rt_delta["RUBiS-1"]


def test_migration_rt_deltas_cover_colocated_apps(
    cost_manager, base_configuration
):
    predicted = cost_manager.predict(
        MigrateVm("RUBiS-1-db-0", "host-0"),
        base_configuration,
        {"RUBiS-1": 50.0, "RUBiS-2": 50.0},
    )
    assert "RUBiS-1" in predicted.rt_delta
    assert "RUBiS-2" in predicted.rt_delta  # co-located on both hosts
    assert (
        predicted.rt_delta["RUBiS-2"] < predicted.rt_delta["RUBiS-1"]
    )


def test_cap_change_duration_scales_with_count(
    cost_manager, base_configuration
):
    single = cost_manager.predict(
        IncreaseCpu("RUBiS-1-db-0", 0.1),
        base_configuration,
        {"RUBiS-1": 50.0, "RUBiS-2": 50.0},
    )
    triple = cost_manager.predict(
        IncreaseCpu("RUBiS-1-db-0", 0.1, count=3),
        base_configuration,
        {"RUBiS-1": 50.0, "RUBiS-2": 50.0},
    )
    assert triple.duration == pytest.approx(3 * single.duration)


def test_power_cycle_predictions(cost_manager, base_configuration):
    on = cost_manager.predict(
        PowerOnHost("host-2"), base_configuration, {"RUBiS-1": 50.0}
    )
    off = cost_manager.predict(
        PowerOffHost("host-2"),
        base_configuration.power_on("host-2"),
        {"RUBiS-1": 50.0},
    )
    assert 60.0 <= on.duration <= 120.0
    assert 20.0 <= off.duration <= 45.0
    assert on.power_delta_watts > off.power_delta_watts


def test_add_replica_prediction(cost_manager, base_configuration):
    predicted = cost_manager.predict(
        AddReplica("RUBiS-1", "db", "host-0", 0.2),
        base_configuration,
        {"RUBiS-1": 75.0, "RUBiS-2": 10.0},
    )
    assert predicted.duration > 30.0
    assert predicted.rt_delta["RUBiS-1"] > 0.0
