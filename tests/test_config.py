"""Tests for configurations, placements, and feasibility rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
    VmDescriptor,
)

HOSTS = ("h1", "h2", "h3")


def small_catalog() -> VmCatalog:
    return VmCatalog(
        [
            VmDescriptor("a-web-0", "a", "web"),
            VmDescriptor("a-db-0", "a", "db"),
            VmDescriptor("a-db-1", "a", "db"),
            VmDescriptor("b-web-0", "b", "web"),
        ]
    )


# -- Placement ---------------------------------------------------------------


def test_placement_validates_cap_range():
    with pytest.raises(ValueError):
        Placement("h1", 0.0)
    with pytest.raises(ValueError):
        Placement("h1", 1.5)


def test_placement_with_cap_and_host():
    placement = Placement("h1", 0.4)
    assert placement.with_cap(0.6) == Placement("h1", 0.6)
    assert placement.with_host("h2") == Placement("h2", 0.4)


# -- VmCatalog ---------------------------------------------------------------


def test_catalog_rejects_duplicates():
    with pytest.raises(ValueError):
        VmCatalog(
            [VmDescriptor("x", "a", "web"), VmDescriptor("x", "a", "db")]
        )


def test_catalog_for_tier_and_apps():
    catalog = small_catalog()
    assert [d.vm_id for d in catalog.for_tier("a", "db")] == [
        "a-db-0",
        "a-db-1",
    ]
    assert catalog.apps() == ("a", "b")
    assert "a-web-0" in catalog
    assert len(catalog) == 4


def test_descriptor_rejects_nonpositive_memory():
    with pytest.raises(ValueError):
        VmDescriptor("x", "a", "web", memory_mb=0)


# -- Configuration basics -----------------------------------------------------


def test_configuration_is_immutable_and_hashable():
    config = Configuration({"a-web-0": Placement("h1", 0.4)}, {"h1"})
    with pytest.raises(AttributeError):
        config.placements = {}
    assert hash(config) == hash(
        Configuration({"a-web-0": Placement("h1", 0.4)}, {"h1"})
    )


def test_equality_ignores_insertion_order():
    one = Configuration(
        {"a": Placement("h1", 0.2), "b": Placement("h2", 0.2)}, {"h1", "h2"}
    )
    two = Configuration(
        {"b": Placement("h2", 0.2), "a": Placement("h1", 0.2)}, {"h1", "h2"}
    )
    assert one == two and hash(one) == hash(two)


def test_vm_on_unpowered_host_rejected():
    with pytest.raises(ValueError):
        Configuration({"a-web-0": Placement("h1", 0.4)}, set())


def test_accessors():
    config = Configuration(
        {
            "a-web-0": Placement("h1", 0.4),
            "a-db-0": Placement("h2", 0.3),
        },
        {"h1", "h2", "h3"},
    )
    assert config.placement_of("a-web-0") == Placement("h1", 0.4)
    assert config.placement_of("missing") is None
    assert config.is_placed("a-db-0")
    assert config.vms_on_host("h1") == ("a-web-0",)
    assert config.used_hosts() == {"h1", "h2"}
    assert config.idle_hosts() == {"h3"}
    assert config.host_cpu_load("h2") == pytest.approx(0.3)


def test_replica_count_and_memory_load():
    catalog = small_catalog()
    config = Configuration(
        {
            "a-db-0": Placement("h1", 0.2),
            "a-db-1": Placement("h1", 0.2),
        },
        {"h1"},
    )
    assert config.replica_count(catalog, "a", "db") == 2
    assert config.replica_count(catalog, "a", "web") == 0
    assert config.host_memory_load(catalog, "h1") == 400


# -- functional updates --------------------------------------------------------


def test_replace_remove_power_cycle():
    config = Configuration({"a-web-0": Placement("h1", 0.4)}, {"h1"})
    moved = config.replace("a-web-0", Placement("h2", 0.4))
    assert moved.placement_of("a-web-0").host_id == "h2"
    assert "h2" in moved.powered_hosts

    emptied = moved.remove("a-web-0")
    assert not emptied.is_placed("a-web-0")
    with pytest.raises(KeyError):
        emptied.remove("a-web-0")

    off = emptied.power_off("h1")
    assert "h1" not in off.powered_hosts
    with pytest.raises(ValueError):
        moved.power_off("h2")  # still hosts a VM

    on = off.power_on("h1")
    assert "h1" in on.powered_hosts


# -- feasibility ----------------------------------------------------------------


def test_cpu_overcommit_is_violation():
    catalog = small_catalog()
    limits = ConstraintLimits()
    config = Configuration(
        {
            "a-web-0": Placement("h1", 0.5),
            "a-db-0": Placement("h1", 0.5),
        },
        {"h1"},
    )
    problems = config.violations(catalog, limits)
    assert any("CPU" in problem for problem in problems)
    assert not config.is_candidate(catalog, limits)


def test_vm_count_limit_violation():
    catalog = VmCatalog(
        [VmDescriptor(f"v{i}", "a", "web") for i in range(5)]
    )
    limits = ConstraintLimits(max_vms_per_host=4)
    config = Configuration(
        {f"v{i}": Placement("h1", 0.1) for i in range(5)},
        {"h1"},
    )
    # Note: 0.1 caps are below the 0.2 minimum too; check both appear.
    problems = config.violations(catalog, limits)
    assert any("VMs" in problem for problem in problems)
    assert any("cap" in problem for problem in problems)


def test_memory_limit_violation():
    catalog = VmCatalog(
        [VmDescriptor(f"v{i}", "a", "web", memory_mb=300) for i in range(3)]
    )
    limits = ConstraintLimits()  # 824 MB guest memory
    config = Configuration(
        {f"v{i}": Placement("h1", 0.2) for i in range(3)},
        {"h1"},
    )
    assert any(
        "memory" in problem for problem in config.violations(catalog, limits)
    )


def test_feasible_configuration_has_no_violations():
    catalog = small_catalog()
    config = Configuration(
        {
            "a-web-0": Placement("h1", 0.4),
            "a-db-0": Placement("h1", 0.4),
            "a-db-1": Placement("h2", 0.8),
        },
        {"h1", "h2"},
    )
    assert config.violations(catalog, ConstraintLimits()) == []


# -- ConstraintLimits -----------------------------------------------------------


def test_round_cap_snaps_to_grid():
    limits = ConstraintLimits()
    assert limits.round_cap(0.34) == pytest.approx(0.3)
    assert limits.round_cap(0.05) == pytest.approx(0.2)  # min
    assert limits.round_cap(0.95) == pytest.approx(0.8)  # max
    assert limits.guest_memory_mb == 824


# -- property-based -----------------------------------------------------------


@st.composite
def configurations(draw):
    catalog = small_catalog()
    placements = {}
    for descriptor in catalog:
        if draw(st.booleans()):
            host = draw(st.sampled_from(HOSTS))
            cap = draw(
                st.sampled_from([0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8])
            )
            placements[descriptor.vm_id] = Placement(host, cap)
    extra = draw(st.sets(st.sampled_from(HOSTS)))
    powered = {p.host_id for p in placements.values()} | extra
    if not powered:
        powered = {"h1"}
    return Configuration(placements, powered)


@given(configurations())
@settings(max_examples=60, deadline=None)
def test_property_hash_equals_reconstruction(config):
    clone = Configuration(dict(config.placements), config.powered_hosts)
    assert clone == config
    assert hash(clone) == hash(config)


@given(configurations(), st.sampled_from(HOSTS))
@settings(max_examples=60, deadline=None)
def test_property_host_load_is_sum_of_vm_caps(config, host):
    expected = sum(
        placement.cpu_cap
        for placement in config.placements.values()
        if placement.host_id == host
    )
    assert config.host_cpu_load(host) == pytest.approx(expected)


@given(configurations())
@settings(max_examples=60, deadline=None)
def test_property_used_hosts_subset_of_powered(config):
    assert config.used_hosts() <= config.powered_hosts
    assert config.idle_hosts() == config.powered_hosts - config.used_hosts()


@given(configurations())
@settings(max_examples=60, deadline=None)
def test_property_remove_then_replace_roundtrips(config):
    placed = config.placed_vm_ids()
    if not placed:
        return
    vm_id = placed[0]
    placement = config.placement_of(vm_id)
    removed = config.remove(vm_id)
    restored = removed.replace(vm_id, placement)
    assert restored == config
