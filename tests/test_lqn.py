"""Tests for the LQN model and solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.apps.application import ApplicationSet
from repro.apps.rubis import make_rubis_application
from repro.core.config import Configuration, Placement, VmCatalog
from repro.perfmodel.calibration import calibrate_parameters
from repro.perfmodel.lqn import LqnParameters, parameters_for
from repro.perfmodel.solver import LqnSolver, _ps_response


@pytest.fixture(scope="module")
def app():
    return make_rubis_application("RUBiS-1")


@pytest.fixture(scope="module")
def rig(app):
    catalog = VmCatalog(app.vm_descriptors())
    solver = LqnSolver(catalog, parameters_for([app]))
    return catalog, solver


def default_config():
    return Configuration(
        {
            "RUBiS-1-web-0": Placement("h1", 0.4),
            "RUBiS-1-app-0": Placement("h1", 0.4),
            "RUBiS-1-db-0": Placement("h2", 0.4),
        },
        {"h1", "h2"},
    )


# -- parameters --------------------------------------------------------------


def test_parameters_for_matches_application(app):
    params = parameters_for([app])
    assert params.demand("RUBiS-1", "db") == pytest.approx(
        app.mean_tier_demand("db")
    )
    assert params.visits("RUBiS-1", "web") == pytest.approx(1.0)


def test_inflated_demand_includes_virt_overhead(app):
    params = parameters_for([app])
    assert params.inflated_demand("RUBiS-1", "db") == pytest.approx(
        params.demand("RUBiS-1", "db") * 1.08
    )


def test_parameters_validation():
    with pytest.raises(ValueError):
        LqnParameters({("a", "web"): -1.0}, {})
    with pytest.raises(ValueError):
        LqnParameters({}, {}, saturation_knee=1.2)


def test_scaled_applies_multipliers(app):
    params = parameters_for([app])
    scaled = params.scaled({("RUBiS-1", "db"): 2.0})
    assert scaled.demand("RUBiS-1", "db") == pytest.approx(
        2.0 * params.demand("RUBiS-1", "db")
    )
    assert scaled.demand("RUBiS-1", "web") == pytest.approx(
        params.demand("RUBiS-1", "web")
    )


# -- solver behaviour -----------------------------------------------------------


def test_default_config_hits_target_anchor(rig):
    _, solver = rig
    estimate = solver.solve(default_config(), {"RUBiS-1": 50.0})
    # The paper's 400 ms anchor: default config at 50 req/s sits near it.
    assert 0.3 <= estimate.response_times["RUBiS-1"] <= 0.45
    assert not estimate.saturated_apps


def test_response_time_increases_with_load(rig):
    _, solver = rig
    config = default_config()
    previous = 0.0
    for rate in (5.0, 20.0, 35.0, 50.0):
        current = solver.solve(config, {"RUBiS-1": rate}).response_times[
            "RUBiS-1"
        ]
        assert current > previous
        previous = current


def test_bigger_caps_reduce_response_time(rig):
    _, solver = rig
    small = solver.solve(default_config(), {"RUBiS-1": 40.0})
    big_config = Configuration(
        {
            "RUBiS-1-web-0": Placement("h1", 0.4),
            "RUBiS-1-app-0": Placement("h1", 0.4),
            "RUBiS-1-db-0": Placement("h2", 0.8),
        },
        {"h1", "h2"},
    )
    big = solver.solve(big_config, {"RUBiS-1": 40.0})
    assert big.response_times["RUBiS-1"] < small.response_times["RUBiS-1"]


def test_replication_reduces_response_time(rig):
    _, solver = rig
    single = solver.solve(default_config(), {"RUBiS-1": 45.0})
    replicated = solver.solve(
        default_config().replace("RUBiS-1-db-1", Placement("h2", 0.4)),
        {"RUBiS-1": 45.0},
    )
    assert (
        replicated.response_times["RUBiS-1"]
        < single.response_times["RUBiS-1"]
    )


def test_overload_is_finite_and_marked(rig):
    _, solver = rig
    estimate = solver.solve(default_config(), {"RUBiS-1": 90.0})
    assert "RUBiS-1" in estimate.saturated_apps
    assert estimate.response_times["RUBiS-1"] < 1e4
    assert estimate.response_times["RUBiS-1"] > 1.0


def test_dormant_tier_counts_as_saturated(rig):
    _, solver = rig
    config = Configuration(
        {
            "RUBiS-1-web-0": Placement("h1", 0.4),
            "RUBiS-1-app-0": Placement("h1", 0.4),
        },
        {"h1"},
    )
    estimate = solver.solve(config, {"RUBiS-1": 10.0})
    assert "RUBiS-1" in estimate.saturated_apps


def test_host_utilization_includes_dom0_and_caps_at_one(rig):
    _, solver = rig
    estimate = solver.solve(default_config(), {"RUBiS-1": 50.0})
    busy_db = estimate.vm_utilizations["RUBiS-1-db-0"] * 0.4
    assert estimate.host_utilizations["h2"] > busy_db  # Dom-0 share
    heavy = solver.solve(default_config(), {"RUBiS-1": 100.0})
    assert all(value <= 1.0 for value in heavy.host_utilizations.values())


def test_zero_workload_gives_baseline_latency(rig):
    _, solver = rig
    estimate = solver.solve(default_config(), {"RUBiS-1": 0.0})
    assert estimate.response_times["RUBiS-1"] > 0.0
    assert estimate.response_times["RUBiS-1"] < 0.1


def test_unknown_application_rejected(rig):
    _, solver = rig
    with pytest.raises(KeyError):
        solver.solve(default_config(), {"nope": 10.0})


def test_negative_workload_rejected(rig):
    _, solver = rig
    with pytest.raises(ValueError):
        solver.solve(default_config(), {"RUBiS-1": -5.0})


def test_demand_multipliers_shift_response(rig):
    _, solver = rig
    base = solver.solve(default_config(), {"RUBiS-1": 40.0})
    slowed = solver.solve(
        default_config(),
        {"RUBiS-1": 40.0},
        demand_multipliers={("RUBiS-1", "db"): 1.1},
    )
    assert (
        slowed.response_times["RUBiS-1"] > base.response_times["RUBiS-1"]
    )


def test_multi_app_solve(rig):
    app2 = make_rubis_application("RUBiS-2")
    apps = ApplicationSet([make_rubis_application("RUBiS-1"), app2])
    catalog = apps.build_catalog()
    solver = LqnSolver(catalog, parameters_for(apps))
    config = Configuration(
        {
            "RUBiS-1-web-0": Placement("h1", 0.2),
            "RUBiS-1-app-0": Placement("h1", 0.2),
            "RUBiS-1-db-0": Placement("h2", 0.4),
            "RUBiS-2-web-0": Placement("h1", 0.2),
            "RUBiS-2-app-0": Placement("h1", 0.2),
            "RUBiS-2-db-0": Placement("h2", 0.4),
        },
        {"h1", "h2"},
    )
    estimate = solver.solve(config, {"RUBiS-1": 20.0, "RUBiS-2": 30.0})
    assert set(estimate.response_times) == {"RUBiS-1", "RUBiS-2"}
    assert (
        estimate.response_times["RUBiS-2"]
        > estimate.response_times["RUBiS-1"]
    )


# -- the PS curve ------------------------------------------------------------------


def test_ps_response_below_knee_is_hyperbolic():
    assert _ps_response(0.01, 0.5, 0.97, 40.0) == pytest.approx(0.02)


def test_ps_response_is_continuous_at_knee():
    below = _ps_response(0.01, 0.97 - 1e-9, 0.97, 40.0)
    at = _ps_response(0.01, 0.97, 0.97, 40.0)
    assert at == pytest.approx(below, rel=1e-6)


@given(
    st.floats(min_value=1e-4, max_value=0.1),
    st.floats(min_value=0.0, max_value=2.0),
    st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=100, deadline=None)
def test_property_ps_response_monotone_in_rho(base, rho_a, rho_b):
    low, high = sorted((rho_a, rho_b))
    assert _ps_response(base, low, 0.97, 40.0) <= _ps_response(
        base, high, 0.97, 40.0
    ) + 1e-12


# -- calibration ---------------------------------------------------------------------


def test_calibration_is_close_but_not_exact(app):
    truth = parameters_for([app])
    model = calibrate_parameters(
        truth, np.random.default_rng(0), measurement_noise=0.05
    )
    for key, true_value in truth.tier_demands.items():
        estimated = model.tier_demands[key]
        assert estimated != true_value
        assert abs(estimated - true_value) / true_value < 0.10


def test_calibration_zero_noise_is_exact(app):
    truth = parameters_for([app])
    model = calibrate_parameters(
        truth, np.random.default_rng(0), measurement_noise=0.0
    )
    for key, true_value in truth.tier_demands.items():
        assert model.tier_demands[key] == pytest.approx(true_value)


def test_calibration_validates_arguments(app):
    truth = parameters_for([app])
    with pytest.raises(ValueError):
        calibrate_parameters(truth, np.random.default_rng(0), repetitions=0)
    with pytest.raises(ValueError):
        calibrate_parameters(
            truth, np.random.default_rng(0), measurement_noise=-0.1
        )
