"""Tests for the Mistral controller and the hierarchy."""

import pytest

from repro.core.controller import MistralController
from repro.core.hierarchy import ControllerHierarchy
from repro.core.search import AdaptationSearch, SearchSettings
from repro.workload.monitor import WorkloadMonitor

HOSTS = ("host-0", "host-1", "host-2", "host-3")


@pytest.fixture
def controller(apps, catalog, limits, estimator, cost_manager, optimizer):
    search = AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer, HOSTS
    )
    return MistralController(
        name="test-L2",
        search=search,
        monitor=WorkloadMonitor(band_width=8.0),
    )


def test_first_sample_always_evaluates(controller, base_configuration):
    decision = controller.on_sample(
        0.0, {"RUBiS-1": 30.0, "RUBiS-2": 30.0}, base_configuration
    )
    assert decision is not None
    assert controller.stats.decisions == 1


def test_within_band_no_decision(controller, base_configuration):
    controller.on_sample(
        0.0, {"RUBiS-1": 30.0, "RUBiS-2": 30.0}, base_configuration
    )
    decision = controller.on_sample(
        120.0, {"RUBiS-1": 31.0, "RUBiS-2": 29.0}, base_configuration
    )
    assert decision is None
    assert controller.stats.invocations == 2
    assert controller.stats.decisions == 1


def test_band_escape_triggers_search(controller, base_configuration):
    controller.on_sample(
        0.0, {"RUBiS-1": 30.0, "RUBiS-2": 30.0}, base_configuration
    )
    decision = controller.on_sample(
        360.0, {"RUBiS-1": 60.0, "RUBiS-2": 55.0}, base_configuration
    )
    assert decision is not None
    assert not decision.is_null
    assert decision.control_window >= controller.min_control_window
    assert decision.decision_seconds > 0.0


def test_busy_skips_search_but_recentres(controller, base_configuration):
    controller.on_sample(
        0.0, {"RUBiS-1": 30.0, "RUBiS-2": 30.0}, base_configuration
    )
    decision = controller.on_sample(
        120.0,
        {"RUBiS-1": 90.0, "RUBiS-2": 85.0},
        base_configuration,
        busy=True,
    )
    assert decision is None
    assert controller.stats.skipped_busy == 1
    # Bands re-centred on the new workloads: no escape next sample.
    assert (
        controller.on_sample(
            240.0, {"RUBiS-1": 91.0, "RUBiS-2": 84.0}, base_configuration
        )
        is None
    )


def test_expected_utility_uses_lowest_recent(controller):
    controller.record_interval_utility(2.0)
    controller.record_interval_utility(-1.0)
    controller.record_interval_utility(1.0)
    interval = controller.search.estimator.utility.parameters.monitoring_interval
    expected = controller.expected_utility(2 * interval)
    assert expected == pytest.approx(-2.0)
    assert MistralController(
        "x", controller.search, WorkloadMonitor(0.0)
    ).expected_utility(120.0) is None


def test_stats_accumulate(controller, base_configuration):
    controller.on_sample(
        0.0, {"RUBiS-1": 30.0, "RUBiS-2": 30.0}, base_configuration
    )
    controller.on_sample(
        360.0, {"RUBiS-1": 60.0, "RUBiS-2": 55.0}, base_configuration
    )
    stats = controller.stats
    assert stats.invocations == 2
    assert stats.escapes == 2
    assert len(stats.search_seconds) == stats.decisions
    assert stats.mean_search_seconds() > 0.0


# -- hierarchy ---------------------------------------------------------------------


@pytest.fixture
def hierarchy(apps, catalog, limits, estimator, cost_manager, optimizer):
    def make(name, band, kinds, scope):
        settings = SearchSettings(allowed_kinds=frozenset(kinds))
        search = AdaptationSearch(
            apps, catalog, limits, estimator, cost_manager, optimizer,
            scope or HOSTS, settings,
        )
        if scope:
            search.scope_hosts = frozenset(scope)
        return MistralController(
            name=name, search=search, monitor=WorkloadMonitor(band_width=band)
        )

    level1 = [
        make(
            "L1-0",
            0.0,
            {"increase_cpu", "decrease_cpu", "migrate"},
            ("host-0", "host-1"),
        )
    ]
    level2 = make("L2", 8.0, {
        "increase_cpu", "decrease_cpu", "migrate",
        "add_replica", "remove_replica", "power_on", "power_off",
    }, None)
    return ControllerHierarchy(level1, level2)


def test_hierarchy_level2_goes_first_on_escape(
    hierarchy, base_configuration
):
    decisions = hierarchy.on_sample(
        0.0, {"RUBiS-1": 60.0, "RUBiS-2": 55.0}, base_configuration
    )
    if decisions:
        assert decisions[0].controller == "L2"


def test_hierarchy_level1_refines_when_level2_quiet(
    hierarchy, base_configuration
):
    hierarchy.on_sample(
        0.0, {"RUBiS-1": 30.0, "RUBiS-2": 30.0}, base_configuration
    )
    # Small change: inside the L2 band, L1 (band 0) still evaluates.
    decisions = hierarchy.on_sample(
        120.0, {"RUBiS-1": 33.0, "RUBiS-2": 28.0}, base_configuration
    )
    assert all(d.controller.startswith("L1") for d in decisions)


def test_hierarchy_broadcasts_utilities(hierarchy):
    hierarchy.record_interval_utility(1.5)
    for controller in hierarchy.controllers():
        assert controller.expected_utility(120.0) is not None


def test_hierarchy_requires_level1():
    with pytest.raises(ValueError):
        ControllerHierarchy([], level2=None)


def test_mean_search_seconds_keys(hierarchy, base_configuration):
    hierarchy.on_sample(
        0.0, {"RUBiS-1": 60.0, "RUBiS-2": 55.0}, base_configuration
    )
    durations = hierarchy.mean_search_seconds()
    assert set(durations) == {"level1", "level2", "overall"}
