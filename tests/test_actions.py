"""Tests for the six adaptation actions."""

import pytest

from repro.core.actions import (
    ActionError,
    AddReplica,
    DecreaseCpu,
    IncreaseCpu,
    MigrateVm,
    NullAction,
    PowerOffHost,
    PowerOnHost,
    RemoveReplica,
)
from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
    VmDescriptor,
)

LIMITS = ConstraintLimits()


@pytest.fixture
def catalog():
    return VmCatalog(
        [
            VmDescriptor("a-web-0", "a", "web"),
            VmDescriptor("a-db-0", "a", "db"),
            VmDescriptor("a-db-1", "a", "db"),
            VmDescriptor("b-web-0", "b", "web"),
        ]
    )


@pytest.fixture
def config():
    return Configuration(
        {
            "a-web-0": Placement("h1", 0.4),
            "a-db-0": Placement("h2", 0.4),
            "b-web-0": Placement("h1", 0.2),
        },
        {"h1", "h2", "h3"},
    )


# -- CPU tuning -----------------------------------------------------------------


def test_increase_cpu(config, catalog):
    result = IncreaseCpu("a-web-0", 0.1).apply(config, catalog, LIMITS)
    assert result.placement_of("a-web-0").cpu_cap == pytest.approx(0.5)


def test_increase_cpu_multi_step_count(config, catalog):
    result = IncreaseCpu("a-web-0", 0.1, count=3).apply(config, catalog, LIMITS)
    assert result.placement_of("a-web-0").cpu_cap == pytest.approx(0.7)


def test_increase_cpu_may_overcommit_host(config, catalog):
    # h1 carries 0.6; adding 0.3 exceeds the 0.8 share, but the action
    # is legal — the result is an intermediate configuration.
    result = IncreaseCpu("a-web-0", 0.1, count=3).apply(config, catalog, LIMITS)
    assert not result.is_candidate(catalog, LIMITS)


def test_increase_cpu_cannot_exceed_guest_share(config, catalog):
    with pytest.raises(ActionError):
        IncreaseCpu("a-web-0", 0.1, count=5).apply(config, catalog, LIMITS)


def test_decrease_cpu(config, catalog):
    result = DecreaseCpu("a-db-0", 0.1).apply(config, catalog, LIMITS)
    assert result.placement_of("a-db-0").cpu_cap == pytest.approx(0.3)


def test_decrease_cpu_respects_minimum(config, catalog):
    with pytest.raises(ActionError):
        DecreaseCpu("b-web-0", 0.1).apply(config, catalog, LIMITS)


def test_cpu_actions_require_placed_vm(config, catalog):
    with pytest.raises(ActionError):
        IncreaseCpu("a-db-1", 0.1).apply(config, catalog, LIMITS)


def test_cpu_action_cost_key_and_affected(config, catalog):
    action = IncreaseCpu("a-db-0", 0.1)
    assert action.cost_key(catalog) == ("increase_cpu", "db")
    assert action.affected_apps(config, catalog) == {"a"}
    assert action.affected_hosts(config) == {"h2"}


def test_cap_change_validates_parameters():
    with pytest.raises(ValueError):
        IncreaseCpu("x", step=0.0)
    with pytest.raises(ValueError):
        DecreaseCpu("x", step=0.1, count=0)


# -- migration -------------------------------------------------------------------


def test_migrate(config, catalog):
    result = MigrateVm("a-web-0", "h3").apply(config, catalog, LIMITS)
    assert result.placement_of("a-web-0").host_id == "h3"
    assert result.placement_of("a-web-0").cpu_cap == pytest.approx(0.4)


def test_migrate_to_same_host_rejected(config, catalog):
    with pytest.raises(ActionError):
        MigrateVm("a-web-0", "h1").apply(config, catalog, LIMITS)


def test_migrate_to_unpowered_host_rejected(config, catalog):
    with pytest.raises(ActionError):
        MigrateVm("a-web-0", "h9").apply(config, catalog, LIMITS)


def test_migrate_affects_colocated_apps(config, catalog):
    action = MigrateVm("a-web-0", "h2")
    # source h1 hosts app b; destination h2 hosts only app a.
    assert action.affected_apps(config, catalog) == {"a", "b"}
    assert action.affected_hosts(config) == {"h1", "h2"}


# -- replication -------------------------------------------------------------------


def test_add_replica_activates_dormant_vm(config, catalog):
    result = AddReplica("a", "db", "h3", 0.3).apply(config, catalog, LIMITS)
    assert result.placement_of("a-db-1") == Placement("h3", 0.3)


def test_add_replica_with_explicit_vm(config, catalog):
    action = AddReplica("a", "db", "h3", 0.3, vm_id="a-db-1")
    result = action.apply(config, catalog, LIMITS)
    assert result.placement_of("a-db-1") == Placement("h3", 0.3)


def test_add_replica_explicit_vm_must_be_dormant(config, catalog):
    with pytest.raises(ActionError):
        AddReplica("a", "db", "h3", 0.3, vm_id="a-db-0").apply(
            config, catalog, LIMITS
        )


def test_add_replica_explicit_vm_must_match_tier(config, catalog):
    with pytest.raises(ActionError):
        AddReplica("a", "db", "h3", 0.3, vm_id="a-web-0").apply(
            config, catalog, LIMITS
        )


def test_add_replica_fails_when_no_dormant_left(config, catalog):
    grown = AddReplica("a", "db", "h3", 0.3).apply(config, catalog, LIMITS)
    with pytest.raises(ActionError):
        AddReplica("a", "db", "h3", 0.3).apply(grown, catalog, LIMITS)


def test_add_replica_cap_minimum(config, catalog):
    with pytest.raises(ActionError):
        AddReplica("a", "db", "h3", 0.1).apply(config, catalog, LIMITS)


def test_remove_replica(config, catalog):
    grown = AddReplica("a", "db", "h3", 0.3).apply(config, catalog, LIMITS)
    shrunk = RemoveReplica("a-db-1").apply(grown, catalog, LIMITS)
    assert not shrunk.is_placed("a-db-1")


def test_remove_last_replica_rejected(config, catalog):
    with pytest.raises(ActionError):
        RemoveReplica("a-db-0").apply(config, catalog, LIMITS)


# -- host power --------------------------------------------------------------------


def test_power_on(config, catalog):
    result = PowerOnHost("h4").apply(config, catalog, LIMITS)
    assert "h4" in result.powered_hosts


def test_power_on_already_powered_rejected(config, catalog):
    with pytest.raises(ActionError):
        PowerOnHost("h1").apply(config, catalog, LIMITS)


def test_power_off_empty_host(config, catalog):
    result = PowerOffHost("h3").apply(config, catalog, LIMITS)
    assert "h3" not in result.powered_hosts


def test_power_off_loaded_host_rejected(config, catalog):
    with pytest.raises(ActionError):
        PowerOffHost("h1").apply(config, catalog, LIMITS)


def test_power_off_unpowered_rejected(config, catalog):
    with pytest.raises(ActionError):
        PowerOffHost("h9").apply(config, catalog, LIMITS)


# -- null ---------------------------------------------------------------------------


def test_null_action_is_identity(config, catalog):
    assert NullAction().apply(config, catalog, LIMITS) is config
    assert NullAction().affected_apps(config, catalog) == frozenset()


def test_is_applicable_mirrors_apply(config, catalog):
    assert MigrateVm("a-web-0", "h3").is_applicable(config, catalog, LIMITS)
    assert not MigrateVm("a-web-0", "h1").is_applicable(config, catalog, LIMITS)


def test_str_representations(config, catalog):
    assert "migrate" in str(MigrateVm("a-web-0", "h3"))
    assert "+30%" in str(IncreaseCpu("a-web-0", 0.1, count=3))
    assert "-10%" in str(DecreaseCpu("a-web-0", 0.1))
    assert "add_replica" in str(AddReplica("a", "db", "h3", 0.3))
