"""Docs health: markdown cross-references and docstring examples.

The CI docs job runs the same two checks standalone (see
.github/workflows/ci.yml); keeping them in the suite means a broken
link or a drifted docstring example fails locally too.
"""

import doctest
import importlib
import importlib.util
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve():
    check_docs = load_check_docs()
    problems = []
    for path in check_docs.markdown_files([]):
        problems.extend(check_docs.check_file(path))
    assert problems == []


def test_slugify_matches_github_anchors():
    check_docs = load_check_docs()
    assert check_docs.slugify("Fault model") == "fault-model"
    assert check_docs.slugify("§10 — Faults & recovery") == "10--faults--recovery"
    assert check_docs.slugify("`FaultConfig` knobs") == "faultconfig-knobs"


def test_link_checker_catches_breakage(tmp_path):
    check_docs = load_check_docs()
    page = tmp_path / "page.md"
    page.write_text(
        "# Title\n\n"
        "[ok](page.md) [missing](nope.md) [bad anchor](#nowhere)\n"
        "[good anchor](#title) ![image](missing.png)\n"
    )
    problems = check_docs.check_file(page)
    # The broken file link and the dangling anchor are caught; images
    # are ignored by design.
    assert len(problems) == 2
    assert any("nope.md" in problem for problem in problems)
    assert any("#nowhere" in problem for problem in problems)


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.faults.injector",
        "repro.faults.recovery",
        "repro.faults.degradation",
        "repro.sim.engine",
    ],
)
def test_docstring_examples_run(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.attempted > 0, f"{module_name} lost its doctest examples"
    assert results.failed == 0
