"""Array-native expansion core (DESIGN.md §13).

The contract under test: flipping the array core on — numeric codec,
vectorized rounds, shared-memory process payloads — changes *how fast*
rounds are evaluated, never *what* the search decides.  Every decision
trace must be bit-identical to the legacy object-at-a-time path, under
every executor backing, and the codec must round-trip configurations
exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    ConfigCodec,
    Configuration,
    Placement,
    array_core_enabled,
)
from repro.core.search import AdaptationSearch, SearchSettings
from repro.parallel.batch import ScoreContext, install_worker_channel
from repro.parallel.executors import ProcessExecutor, ShmConfigChannel
from repro.testbed.scenarios import _global_perf_pwr, initial_configuration

#: Everything a search outcome decides; wall-clock and pool tallies are
#: measured time, excluded by the contract.
OUTCOME_FIELDS = (
    "actions",
    "final_configuration",
    "predicted_utility",
    "expansions",
    "decision_seconds",
    "pruning_activated",
    "optimal",
)


@pytest.fixture(autouse=True)
def _pin_astar_backend(monkeypatch):
    """This suite specifies the A* loop itself; the
    MISTRAL_SEARCH_STRATEGY CI leg must not swap the backend here."""
    monkeypatch.delenv("MISTRAL_SEARCH_STRATEGY", raising=False)



VM_UNIVERSE = tuple(f"vm-{index}" for index in range(8))
HOST_UNIVERSE = tuple(f"host-{index}" for index in range(5))


@pytest.fixture(scope="module")
def array_testbed():
    """A private 2-app testbed: these tests run the same searches the
    incremental-engine tests do, and sharing the session testbed would
    pre-warm its estimator caches out from under them."""
    from repro.testbed import make_testbed

    return make_testbed(app_count=2, seed=0)


def _make_search(testbed, **settings_kwargs) -> AdaptationSearch:
    settings = SearchSettings(
        self_aware=True, incremental=True, **settings_kwargs
    )
    return AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=settings,
    )


def _outcomes(search, testbed, runs=2):
    start = initial_configuration(testbed)
    outcomes = []
    for run in range(runs):
        workloads = {
            name: 45.0 + 5.0 * index + run
            for index, name in enumerate(testbed.applications.names())
        }
        search.perf_pwr.optimize(workloads)
        outcomes.append(search.search(start, workloads, 300.0))
    search.close_executor()
    return outcomes


def _assert_outcomes_identical(reference, candidate) -> None:
    for field in OUTCOME_FIELDS:
        assert getattr(candidate, field) == getattr(reference, field), field


# -- codec round-trip ----------------------------------------------------------


@st.composite
def configurations(draw) -> Configuration:
    """Random in-universe configurations: a subset of VMs placed on
    random hosts with arbitrary positive caps, powered = used hosts
    plus random idle extras."""
    placements = {}
    used = set()
    for vm_id in VM_UNIVERSE:
        if draw(st.booleans()):
            host = draw(st.sampled_from(HOST_UNIVERSE))
            cap = draw(
                st.floats(
                    min_value=1e-6,
                    max_value=1.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            placements[vm_id] = Placement(host, cap)
            used.add(host)
    extras = draw(st.sets(st.sampled_from(HOST_UNIVERSE)))
    return Configuration(placements, used | extras)


@settings(max_examples=200, deadline=None)
@given(configuration=configurations())
def test_codec_round_trip_is_bit_exact(configuration):
    """decode(encode(c)) reproduces the configuration exactly — same
    placements (cap floats compared by raw bits), same powered set,
    equal and hash-equal to the original."""
    codec = ConfigCodec(VM_UNIVERSE, HOST_UNIVERSE)
    decoded = codec.decode(codec.encode(configuration))
    assert decoded == configuration
    assert hash(decoded) == hash(configuration)
    for vm_id, placement in configuration.placement_items():
        twin = decoded.placement_of(vm_id)
        assert twin.host_id == placement.host_id
        assert twin.cpu_cap.hex() == placement.cpu_cap.hex()
    assert decoded.powered_hosts == configuration.powered_hosts
    assert codec.encode_key(decoded) == codec.encode_key(configuration)


@settings(max_examples=100, deadline=None)
@given(first=configurations(), second=configurations())
def test_codec_keys_are_injective(first, second):
    """Distinct configurations get distinct byte keys (and equal ones
    equal keys) — the dedup invariant the array search relies on."""
    codec = ConfigCodec(VM_UNIVERSE, HOST_UNIVERSE)
    same_key = codec.encode_key(first) == codec.encode_key(second)
    assert same_key == (first == second)


def test_codec_rejects_out_of_universe_configurations():
    codec = ConfigCodec(VM_UNIVERSE, HOST_UNIVERSE)
    with pytest.raises(KeyError):
        codec.encode(
            Configuration({"stranger": Placement("host-0", 0.2)}, {"host-0"})
        )
    with pytest.raises(KeyError):
        codec.encode(Configuration({}, {"elsewhere"}))


# -- bit-identity: array rounds vs legacy rounds -------------------------------


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_array_core_outcomes_bit_identical_to_legacy(executor, array_testbed):
    """Array-native rounds under every executor backing reproduce the
    legacy per-child loop's outcomes exactly — actions, configurations,
    float utilities, expansion counts, and the Eq. 3 decision seconds."""
    legacy = _outcomes(
        _make_search(array_testbed, array_core=False), array_testbed
    )
    workers = 1 if executor == "serial" else 2
    array = _outcomes(
        _make_search(
            array_testbed,
            array_core=True,
            parallel_workers=workers,
            parallel_executor=executor,
        ),
        array_testbed,
    )
    for reference, candidate in zip(legacy, array):
        _assert_outcomes_identical(reference, candidate)


def test_array_core_defaults_follow_environment(monkeypatch):
    monkeypatch.delenv("MISTRAL_ARRAY_CORE", raising=False)
    assert array_core_enabled() is True
    monkeypatch.setenv("MISTRAL_ARRAY_CORE", "0")
    assert array_core_enabled() is False
    monkeypatch.setenv("MISTRAL_ARRAY_CORE", "1")
    assert array_core_enabled() is True


def test_env_gate_disables_array_rounds(array_testbed, monkeypatch):
    """MISTRAL_ARRAY_CORE=0 pins the legacy path when the settings
    leave the choice to the environment — and the outcome still
    matches the array path bit for bit."""
    array = _outcomes(
        _make_search(array_testbed, array_core=True), array_testbed, runs=1
    )
    monkeypatch.setenv("MISTRAL_ARRAY_CORE", "0")
    gated = _outcomes(_make_search(array_testbed), array_testbed, runs=1)
    for reference, candidate in zip(array, gated):
        _assert_outcomes_identical(reference, candidate)


# -- solver interop: array-assembled states feed update_state ------------------


def _assert_states_identical(left, right) -> None:
    assert left.configuration == right.configuration
    assert left.tiers.keys() == right.tiers.keys()
    for app, value in right.estimate.response_times.items():
        assert left.estimate.response_times[app].hex() == value.hex()
    assert left.estimate.tier_utilizations == right.estimate.tier_utilizations
    assert left.estimate.host_utilizations == right.estimate.host_utilizations


@pytest.mark.perf_smoke
def test_array_solve_batch_states_interoperate_with_update_state(
    solver, base_configuration
):
    """A state assembled by the array path of ``solve_batch`` is a
    first-class parent for the scalar delta engine: chaining
    ``update_state`` off it reproduces a fresh scalar solve exactly."""
    workloads = {"RUBiS-1": 33.0, "RUBiS-2": 21.0}
    (state,) = solver.solve_batch(
        [base_configuration], workloads, use_arrays=True
    )
    _assert_states_identical(
        state, solver.solve_state(base_configuration, workloads)
    )
    configuration = base_configuration
    for vm_id in base_configuration.placed_vm_ids()[:3]:
        placement = configuration.placement_of(vm_id)
        configuration = configuration.replace(
            vm_id,
            placement.with_cap(0.3 if placement.cpu_cap != 0.3 else 0.5),
        )
        state = solver.update_state(
            state, configuration, workloads, (vm_id,)
        )
        _assert_states_identical(
            state, solver.solve_state(configuration, workloads)
        )


@pytest.mark.perf_smoke
def test_array_solve_batch_does_not_regress_legacy_batch(
    solver, base_configuration
):
    """The array assembly path must stay within 10% of the legacy
    ``solve_batch`` path on the same batch (best-of-N to shrug off
    scheduler noise; the two paths produce identical states).  A small
    absolute allowance keeps the ratio meaningful when warm estimator
    memos collapse both paths to sub-millisecond lookups, where the
    array path's constant assembly overhead dominates."""
    import time

    workloads = {"RUBiS-1": 40.0, "RUBiS-2": 25.0}
    configurations = [base_configuration]
    caps = (0.25, 0.35, 0.45, 0.55)
    for index, vm_id in enumerate(base_configuration.placed_vm_ids()):
        placement = base_configuration.placement_of(vm_id)
        for cap in caps:
            if cap != placement.cpu_cap:
                configurations.append(
                    base_configuration.replace(vm_id, placement.with_cap(cap))
                )

    def best_of(use_arrays: bool, reps: int = 5) -> float:
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            solver.solve_batch(
                configurations, workloads, use_arrays=use_arrays
            )
            best = min(best, time.perf_counter() - start)
        return best

    best_of(True, reps=1)  # warm both paths' caches identically
    best_of(False, reps=1)
    array_time = best_of(True)
    legacy_time = best_of(False)
    assert array_time <= legacy_time * 1.1 + 1e-3, (
        f"array solve_batch {array_time:.6f}s vs legacy {legacy_time:.6f}s"
    )


# -- shared-memory configuration channel ---------------------------------------


def test_shm_channel_round_trips_and_ships_deltas(array_testbed):
    """Publishing writes only changed cells (delta bytes, not the full
    image) and workers' decode of the buffer reproduces the published
    configuration exactly."""
    testbed = array_testbed
    codec = ConfigCodec(testbed.catalog.vm_ids(), testbed.host_ids)
    channel = ShmConfigChannel(codec)
    first = initial_configuration(testbed)
    seq1, wrote1 = channel.publish(first)
    assert seq1 == 1 and wrote1 > 0

    decoded = channel.codec.decode(
        type(codec.encode(first))(
            channel.hosts.copy(), channel.caps.copy(), channel.powered.copy()
        )
    )
    assert decoded == first

    vm_id = first.placed_vm_ids()[0]
    placement = first.placement_of(vm_id)
    child = first.replace(vm_id, placement.with_cap(placement.cpu_cap + 0.1))
    seq2, wrote2 = channel.publish(child)
    assert seq2 == 2
    # One cap cell changed: exactly one float64 rewritten.
    assert wrote2 == np.dtype(np.float64).itemsize
    assert int(channel.seq_slot[0]) == 2

    # Republishing the unchanged snapshot writes nothing.
    seq3, wrote3 = channel.publish(child)
    assert seq3 == 3 and wrote3 == 0


def test_process_executor_uses_channel_and_falls_back_without_host_ids(
    array_testbed,
):
    """With host ids the process executor builds the shm channel; a
    context without them (or an out-of-universe configuration) falls
    back to pickling the configuration — same results either way."""
    testbed = array_testbed
    with_ids = ScoreContext(
        testbed.catalog,
        testbed.limits,
        testbed.cost_manager,
        tuple(testbed.host_ids),
    )
    executor = ProcessExecutor(with_ids, workers=2)
    try:
        assert executor._channel is not None
        configuration = initial_configuration(testbed)
        marker = executor._publish(configuration)
        assert isinstance(marker, int)
        # Out-of-universe parents pickle instead of raising.
        foreign = Configuration(
            {}, {testbed.host_ids[0], "not-a-testbed-host"}
        )
        assert executor._publish(foreign) is foreign
    finally:
        executor.close()
        install_worker_channel(None)

    without_ids = ScoreContext(
        testbed.catalog, testbed.limits, testbed.cost_manager
    )
    bare = ProcessExecutor(without_ids, workers=2)
    try:
        assert bare._channel is None
        configuration = initial_configuration(testbed)
        assert bare._publish(configuration) is configuration
    finally:
        bare.close()
