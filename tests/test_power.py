"""Tests for the power model and its calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.calibration import calibrate_power_model, fit_exponent
from repro.power.model import HostPowerModel, SystemPowerModel


# -- host curve -----------------------------------------------------------------


def test_endpoints():
    model = HostPowerModel(idle_watts=60, busy_watts=100, exponent=1.4)
    assert model.watts(0.0) == pytest.approx(60.0)
    assert model.watts(1.0) == pytest.approx(100.0)


def test_curve_is_concave_above_linear():
    model = HostPowerModel(idle_watts=60, busy_watts=100, exponent=1.4)
    linear = 60 + 40 * 0.5
    assert model.watts(0.5) > linear


def test_utilization_clamped():
    model = HostPowerModel()
    assert model.watts(-0.5) == model.watts(0.0)
    assert model.watts(1.5) == model.watts(1.0)


def test_validation():
    with pytest.raises(ValueError):
        HostPowerModel(idle_watts=-1)
    with pytest.raises(ValueError):
        HostPowerModel(idle_watts=100, busy_watts=60)
    with pytest.raises(ValueError):
        HostPowerModel(exponent=2.5)


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.0, max_value=2.0),
)
@settings(max_examples=100, deadline=None)
def test_property_monotone_and_bounded(rho_a, rho_b, exponent):
    model = HostPowerModel(idle_watts=60, busy_watts=100, exponent=exponent)
    low, high = sorted((rho_a, rho_b))
    assert model.watts(low) <= model.watts(high) + 1e-9
    assert 60.0 - 1e-9 <= model.watts(rho_a) <= 100.0 + 1e-9


# -- system aggregation ------------------------------------------------------------


def test_total_watts_sums_powered_hosts():
    system = SystemPowerModel.uniform(["h1", "h2", "h3"], HostPowerModel())
    total = system.total_watts(["h1", "h2"], {"h1": 1.0})
    assert total == pytest.approx(100.0 + 60.0)


def test_unpowered_hosts_draw_nothing():
    system = SystemPowerModel.uniform(["h1", "h2"], HostPowerModel())
    assert system.total_watts([], {}) == 0.0


def test_unknown_host_rejected():
    system = SystemPowerModel.uniform(["h1"], HostPowerModel())
    with pytest.raises(KeyError):
        system.total_watts(["h9"], {})
    with pytest.raises(KeyError):
        system.host_model("h9")


def test_empty_system_rejected():
    with pytest.raises(ValueError):
        SystemPowerModel({})


def test_per_host_models():
    system = SystemPowerModel(
        {
            "big": HostPowerModel(idle_watts=100, busy_watts=200),
            "small": HostPowerModel(idle_watts=30, busy_watts=50),
        }
    )
    assert system.host_watts("big", 0.0) == pytest.approx(100.0)
    assert system.host_watts("small", 0.0) == pytest.approx(30.0)
    assert set(system.host_ids()) == {"big", "small"}


# -- calibration --------------------------------------------------------------------


def test_fit_exponent_recovers_truth_without_noise():
    truth = HostPowerModel(exponent=1.6)
    rho = np.linspace(0.0, 1.0, 21)
    watts = np.array([truth.watts(u) for u in rho])
    fitted = fit_exponent(rho, watts, truth.idle_watts, truth.busy_watts)
    assert fitted == pytest.approx(1.6, abs=0.01)


def test_fit_exponent_validates_inputs():
    with pytest.raises(ValueError):
        fit_exponent(np.array([0.1]), np.array([1.0, 2.0]), 60, 100)
    with pytest.raises(ValueError):
        fit_exponent(np.array([0.1]), np.array([61.0]), 100, 60)
    with pytest.raises(ValueError):
        fit_exponent(np.array([0.1]), np.array([61.0]), 60, 100, bounds=(2, 1))


def test_calibrated_model_close_to_truth():
    truth = HostPowerModel(idle_watts=60, busy_watts=100, exponent=1.45)
    fitted = calibrate_power_model(truth, np.random.default_rng(3))
    assert abs(fitted.exponent - truth.exponent) < 0.25
    assert abs(fitted.idle_watts - truth.idle_watts) < 3.0
    assert abs(fitted.busy_watts - truth.busy_watts) < 3.0
    # Prediction error across the sweep stays small (Fig. 5c).
    errors = [
        abs(fitted.watts(u) - truth.watts(u)) / truth.watts(u)
        for u in np.linspace(0, 1, 11)
    ]
    assert max(errors) < 0.05


def test_calibration_validates_arguments():
    truth = HostPowerModel()
    with pytest.raises(ValueError):
        calibrate_power_model(truth, np.random.default_rng(0), sweep_points=2)
    with pytest.raises(ValueError):
        calibrate_power_model(truth, np.random.default_rng(0), repetitions=0)


def test_calibration_is_deterministic_per_seed():
    truth = HostPowerModel(exponent=1.3)
    a = calibrate_power_model(truth, np.random.default_rng(9))
    b = calibrate_power_model(truth, np.random.default_rng(9))
    assert a == b
