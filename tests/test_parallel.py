"""Parallel evaluation stage (DESIGN.md §11).

The contract under test: routing expansion rounds through the batched
evaluator — with any executor backing — changes *when* work happens,
never *what* the search decides.  Outcomes must be bit-identical to the
legacy serial loop, pools must fail soft (inline fallback, resilience
hook), and the batched solver must reproduce ``solve_state`` exactly.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import pytest

from repro.core.controller import MistralController
from repro.core.hierarchy import ControllerHierarchy
from repro.core.search import AdaptationSearch, SearchSettings
from repro.parallel.executors import (
    SerialExecutor,
    resolve_executor_kind,
)
from repro.telemetry.trace import RingBufferSink, Tracer
from repro.testbed.scenarios import _global_perf_pwr, initial_configuration
from repro.workload.monitor import WorkloadMonitor

#: Everything a search outcome decides; ``wall_seconds`` and the
#: ``pool_*`` tallies are measured time, excluded by the contract.
OUTCOME_FIELDS = (
    "actions",
    "final_configuration",
    "predicted_utility",
    "expansions",
    "decision_seconds",
    "pruning_activated",
    "optimal",
)


def _make_search(testbed, **settings_kwargs) -> AdaptationSearch:
    # The parallel-evaluation contract is about the A* expansion rounds;
    # pin the backend so the MISTRAL_SEARCH_STRATEGY CI leg cannot swap
    # the search out from under these assertions.
    settings = SearchSettings(
        self_aware=True, incremental=True, strategy="astar", **settings_kwargs
    )
    return AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=settings,
    )


def _high_workloads(testbed, run: int) -> dict[str, float]:
    """Load that forces a real multi-round search (harness methodology)."""
    return {
        name: 45.0 + 5.0 * index + run
        for index, name in enumerate(testbed.applications.names())
    }


def _outcomes(search, testbed, runs=2):
    start = initial_configuration(testbed)
    outcomes = []
    for run in range(runs):
        workloads = _high_workloads(testbed, run)
        search.perf_pwr.optimize(workloads)
        outcomes.append(search.search(start, workloads, 300.0))
    search.close_executor()
    return outcomes


def _assert_outcomes_identical(reference, candidate) -> None:
    for field in OUTCOME_FIELDS:
        assert getattr(candidate, field) == getattr(reference, field), field


# -- bit-identity across executors ---------------------------------------------


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_parallel_outcomes_bit_identical_to_legacy(executor, small_testbed):
    """Batched rounds under every executor backing reproduce the legacy
    per-child loop's outcomes exactly — actions, configurations, float
    utilities, expansion counts, and the Eq. 3 decision seconds."""
    legacy = _outcomes(_make_search(small_testbed), small_testbed)
    workers = 1 if executor == "serial" else 2
    parallel = _outcomes(
        _make_search(
            small_testbed,
            parallel_workers=workers,
            parallel_executor=executor,
        ),
        small_testbed,
    )
    for reference, candidate in zip(legacy, parallel):
        _assert_outcomes_identical(reference, candidate)


def test_parallel_outcome_reports_pool_cost(small_testbed):
    """Pool dispatch time is surfaced on the outcome (and is contained
    in the overall wall time, never hidden off-book)."""
    search = _make_search(
        small_testbed, parallel_workers=2, parallel_executor="thread"
    )
    (outcome,) = _outcomes(search, small_testbed, runs=1)
    assert outcome.pool_wall_seconds > 0.0
    assert outcome.pool_wall_seconds <= outcome.wall_seconds


# -- graceful degradation ------------------------------------------------------


class _BrokenExecutor:
    """Pool stand-in whose every dispatch dies."""

    kind = "thread"
    workers = 2

    def __init__(self) -> None:
        self.closed = False

    def score(self, *args, **kwargs):
        raise RuntimeError("worker pool died")

    def predict(self, *args, **kwargs):
        raise RuntimeError("worker pool died")

    def close(self) -> None:
        self.closed = True


def test_executor_crash_respawns_pool_before_demoting(small_testbed):
    """A dying pool is respawned (bounded, backed off) before any
    demotion: the outcome still matches the legacy loop bit for bit,
    the broken pool is closed, the respawn hook fires, and no
    permanent serial pin happens while attempts remain."""
    (reference,) = _outcomes(_make_search(small_testbed), small_testbed, 1)

    search = _make_search(
        small_testbed,
        parallel_workers=2,
        parallel_executor="thread",
        executor_respawn_backoff_seconds=0.0,
    )
    broken = _BrokenExecutor()
    search._executor = broken
    search._executor_key = ("thread", 2)
    hook_calls: list[str] = []
    search.on_executor_failure = hook_calls.append

    (outcome,) = _outcomes(search, small_testbed, 1)
    _assert_outcomes_identical(reference, outcome)
    assert broken.closed
    # One crash, one respawn, no demotion: the replacement pool (a
    # healthy ThreadExecutor) finished the round.
    assert not search._parallel_failed
    assert search._respawn_attempts == 1
    assert hook_calls == ["worker_respawn"]

    # Later searches still use the (respawned) pool kind.
    (again,) = _outcomes(search, small_testbed, 1)
    _assert_outcomes_identical(reference, again)
    assert not search._parallel_failed


def test_executor_crash_demotes_after_respawn_budget(small_testbed):
    """With the respawn budget exhausted (limit 0) a dying pool pins
    the search to the inline path permanently — the pre-respawn
    fallback contract survives as the last rung."""
    (reference,) = _outcomes(_make_search(small_testbed), small_testbed, 1)

    search = _make_search(
        small_testbed,
        parallel_workers=2,
        parallel_executor="thread",
        executor_respawn_limit=0,
    )
    broken = _BrokenExecutor()
    search._executor = broken
    search._executor_key = ("thread", 2)
    hook_calls: list[str] = []
    search.on_executor_failure = hook_calls.append

    (outcome,) = _outcomes(search, small_testbed, 1)
    _assert_outcomes_identical(reference, outcome)
    assert broken.closed
    assert search._parallel_failed
    assert hook_calls == ["executor_failure"]

    # The demotion is permanent: later searches stay inline without
    # re-attempting the broken pool kind.
    (again,) = _outcomes(search, small_testbed, 1)
    _assert_outcomes_identical(reference, again)
    assert search._parallel_failed
    assert isinstance(
        search._ensure_executor(search.settings, 2), SerialExecutor
    )


def test_controller_wires_executor_failures_into_resilience(small_testbed):
    """The controller timestamps executor failures with the sample it
    was processing and feeds them to its degradation ladder."""
    controller = MistralController(
        name="test",
        search=_make_search(small_testbed),
        monitor=WorkloadMonitor(band_width=0.0),
    )
    assert (
        controller.search.on_executor_failure
        == controller._on_executor_failure
    )
    controller.enable_resilience()
    controller._last_now = 360.0
    controller.search.on_executor_failure("executor_failure")
    assert controller.stats.faults_observed == 1


def test_resolve_executor_kind_rules():
    assert resolve_executor_kind("serial", 8) == "serial"
    assert resolve_executor_kind("thread", 1) == "serial"
    assert resolve_executor_kind("auto", 1) == "serial"
    assert resolve_executor_kind("thread", 2) == "thread"
    assert resolve_executor_kind("process", 2) == "process"
    with pytest.raises(ValueError):
        resolve_executor_kind("gpu", 2)


# -- batched LQN solving -------------------------------------------------------


def _assert_states_identical(batched, scalar) -> None:
    assert batched.configuration == scalar.configuration
    assert batched.tiers.keys() == scalar.tiers.keys()
    left, right = batched.estimate, scalar.estimate
    for app, value in right.response_times.items():
        assert left.response_times[app].hex() == value.hex()
    assert left.tier_utilizations == right.tier_utilizations
    assert left.host_utilizations == right.host_utilizations


@pytest.mark.perf_smoke
def test_solve_batch_single_config_matches_solve_state(
    solver, base_configuration
):
    workloads = {"RUBiS-1": 30.0, "RUBiS-2": 55.0}
    (batched,) = solver.solve_batch([base_configuration], workloads)
    _assert_states_identical(
        batched, solver.solve_state(base_configuration, workloads)
    )


@pytest.mark.perf_smoke
def test_solve_batch_many_configs_match_their_scalar_solves(
    solver, base_configuration
):
    workloads = {"RUBiS-1": 48.0, "RUBiS-2": 12.0}
    configurations = [base_configuration]
    for vm_id in base_configuration.placed_vm_ids()[:3]:
        placement = base_configuration.placement_of(vm_id)
        configurations.append(
            base_configuration.replace(
                vm_id, placement.with_cap(0.3 if placement.cpu_cap != 0.3 else 0.5)
            )
        )
    batch = solver.solve_batch(configurations, workloads)
    for batched, configuration in zip(batch, configurations):
        _assert_states_identical(
            batched, solver.solve_state(configuration, workloads)
        )


# -- concurrent controller hierarchy -------------------------------------------


class _StubController:
    """Minimal on_sample recorder standing in for a MistralController."""

    def __init__(self, name: str, decision=None) -> None:
        self.name = name
        self.decision = decision
        self.threads: list[str] = []

    def on_sample(self, now, workloads, configuration, busy=False):
        self.threads.append(threading.current_thread().name)
        return self.decision

    def shutdown_parallel(self) -> None:
        pass


def _decision(name: str):
    return SimpleNamespace(is_null=False, controller=name)


def test_hierarchy_plans_level1_concurrently_and_merges_in_order():
    level1 = [
        _StubController("L1-0", _decision("L1-0")),
        _StubController("L1-1", _decision("L1-1")),
    ]
    level2 = _StubController("L2", None)
    hierarchy = ControllerHierarchy(level1, level2, parallel_workers=2)
    assert hierarchy._concurrent_level1()

    decisions = hierarchy.on_sample(0.0, {"RUBiS-1": 10.0}, object())
    assert [decision.controller for decision in decisions] == ["L1-0", "L1-1"]
    for controller in level1:
        assert controller.threads[0].startswith("mistral-l1")
    assert level2.threads[0] == threading.current_thread().name

    hierarchy.shutdown_parallel()
    assert hierarchy._level1_pool is None


def test_hierarchy_sequential_without_workers():
    level1 = [_StubController("L1-0"), _StubController("L1-1")]
    hierarchy = ControllerHierarchy(level1, _StubController("L2"))
    assert not hierarchy._concurrent_level1()
    hierarchy.on_sample(0.0, {"RUBiS-1": 10.0}, object())
    main = threading.current_thread().name
    assert all(c.threads == [main] for c in level1)


# -- tracer thread safety ------------------------------------------------------


def test_tracer_span_stacks_are_thread_local():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with tracer.span("main-outer"):
        worker_done = threading.Event()

        def worker() -> None:
            with tracer.span("worker-span"):
                tracer.event("worker-event")
            worker_done.set()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert worker_done.is_set()
        tracer.event("main-event")

    by_name = {event["name"]: event for event in sink.events()}
    outer = by_name["main-outer"]
    # The worker's span opened at the thread's own top level — not
    # nested under the main thread's open span.
    assert by_name["worker-span"]["parent"] is None
    assert by_name["worker-span"]["depth"] == 0
    assert by_name["worker-event"]["parent"] == by_name["worker-span"]["seq"]
    assert by_name["main-event"]["parent"] == outer["seq"]
    # Sequence numbers stay globally unique across threads.
    seqs = [event["seq"] for event in sink.events()]
    assert len(seqs) == len(set(seqs))
