"""Observability layer: decision provenance, phase-attributed
profiling, worker trace propagation, and the trace analysis toolkit.

The contracts under test:

- every ``controller.decision`` span is accompanied by a
  ``decision.provenance`` event whose Eq. 3 terms sum to the reported
  utility, with rejected-candidate evidence in multi-candidate runs;
- phase profiling attributes search time to enumerate/score/solve/
  merge/frontier and costs nothing when telemetry is off;
- traces produced under the fork-process executor carry worker spans
  that survive the merge with valid parent links and unique sequence
  numbers;
- the toolkit scripts (``trace_query``, ``trace_diff``,
  ``metrics_export``, ``check_perf``) read real traces and gate real
  regressions.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.telemetry import phases as phases_mod
from repro.telemetry import runtime
from repro.telemetry.metrics import Histogram
from repro.telemetry.phases import PhaseProfile, phase
from repro.telemetry.provenance import (
    PROVENANCE_SCHEMA,
    ProvenanceCollector,
    RejectedCandidate,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_script(name: str):
    path = REPO_ROOT / "scripts" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------------------
# phase profiling
# ---------------------------------------------------------------------------


def test_phase_context_is_noop_without_profile():
    assert phases_mod.get_profile() is None
    with phase("score"):  # must not raise or install anything
        pass
    assert phases_mod.get_profile() is None


def test_phase_profile_accumulates_and_snapshots():
    profile = PhaseProfile()
    assert not profile  # empty profile is falsy (event suppressed)
    phases_mod.set_profile(profile)
    try:
        with phase("score"):
            pass
        with phase("score"):
            pass
        profile.add("solve", 0.5, 0.25)
    finally:
        phases_mod.set_profile(None)
    snapshot = profile.snapshot()
    assert profile
    assert snapshot["score"]["calls"] == 2
    assert snapshot["score"]["wall"] >= 0.0
    assert snapshot["solve"] == {"wall": 0.5, "cpu": 0.25, "calls": 1}
    # Canonical phases come first, in pipeline order.
    named = [name for name in snapshot if name in phases_mod.PHASES]
    assert named == [
        name for name in phases_mod.PHASES if name in snapshot
    ]


def test_histogram_percentiles_interpolate():
    histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.6, 3.0):
        histogram.observe(value)
    summary = histogram.percentiles()
    assert set(summary) == {"p50", "p90", "p99"}
    assert 1.0 <= summary["p50"] <= 2.0
    assert summary["p90"] <= 4.0
    assert summary["p99"] <= 4.0
    # Overflow ranks clamp to the last bound.
    histogram.observe(100.0)
    assert histogram.percentile(1.0) == 4.0


# ---------------------------------------------------------------------------
# decision provenance (acceptance: terms sum to the reported utility)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def provenance_setup():
    from repro.core.search import AdaptationSearch, SearchSettings
    from repro.testbed.scenarios import (
        _global_perf_pwr,
        initial_configuration,
        make_testbed,
    )

    testbed = make_testbed(2, seed=0)
    search = AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=SearchSettings(self_aware=True, incremental=True),
    )
    names = [app.name for app in testbed.applications]
    workloads = {
        name: 45.0 + 5.0 * index for index, name in enumerate(names)
    }
    return search, initial_configuration(testbed), workloads


def test_provenance_terms_sum_to_reported_utility(provenance_setup):
    """The Eq. 3 decomposition reproduces the search's own utility:
    steady + transient == total == predicted_utility (float tolerance),
    and a forced multi-candidate search records rejected rivals."""
    search, start, workloads = provenance_setup
    search.perf_pwr.optimize(workloads)
    runtime.enable()
    try:
        outcome = search.search(start, workloads, 300.0)
    finally:
        runtime.disable()
    record = outcome.provenance
    assert record is not None
    assert outcome.actions, "scenario must force a real adaptation"
    utility = record.utility
    scale = max(abs(utility["total"]), 1.0)
    assert (
        abs(utility["steady"] + utility["transient"] - utility["total"])
        <= 1e-6 * scale
    )
    assert (
        abs(utility["total"] - outcome.predicted_utility) <= 1e-6 * scale
    )
    assert record.chosen_actions == tuple(
        type(action).__name__ for action in outcome.actions
    )
    # Per-action accrual covers the chain and sums to the transient term.
    assert len(record.per_action) == len(outcome.actions)
    accrued = sum(entry["utility"] for entry in record.per_action)
    assert accrued == pytest.approx(utility["transient"], abs=1e-9)
    # The high-load scenario explores many children: rejection evidence
    # must survive into the record.
    assert record.rejected, "multi-candidate search recorded no rivals"
    reasons = {candidate.reason for candidate in record.rejected}
    assert reasons <= {
        "dominated",
        "pruned",
        "deadline-aborted",
        "fault-debited",
    }
    assert record.search["expansions"] == outcome.expansions


def test_every_decision_span_carries_provenance(tmp_path):
    """End to end through a testbed run: every controller.decision
    span has a decision.provenance event emitted inside it (parent ==
    span seq) whose total matches the span's predicted utility, and
    the same records surface via RunMetrics.decision_provenance."""
    from repro.testbed.scenarios import build_mistral, make_testbed

    testbed = make_testbed(2, seed=0)
    controller, initial = build_mistral(testbed)
    path = tmp_path / "trace.jsonl"
    runtime.enable(jsonl_path=str(path))
    try:
        metrics = testbed.run(
            controller, initial, "provenance-smoke", horizon=30 * 60
        )
    finally:
        runtime.disable()
    records = [
        json.loads(line) for line in path.read_text().splitlines()
    ]
    spans = [
        r
        for r in records
        if r["kind"] == "span" and r["name"] == "controller.decision"
    ]
    events = {
        r["parent"]: r
        for r in records
        if r["kind"] == "event" and r["name"] == "decision.provenance"
    }
    assert spans, "run produced no controller decisions"
    for span in spans:
        event = events.get(span["seq"])
        assert event is not None, (
            f"decision span seq={span['seq']} has no provenance event"
        )
        attrs = event["attrs"]
        assert attrs["schema"] == PROVENANCE_SCHEMA
        utility = attrs["utility"]
        scale = max(abs(utility["total"]), 1.0)
        assert (
            abs(
                utility["steady"]
                + utility["transient"]
                - utility["total"]
            )
            <= 1e-6 * scale
        )
        assert (
            abs(
                utility["total"]
                - span["attrs"]["predicted_utility"]
            )
            <= 1e-6 * scale
        )
    # The decisions the testbed acted on surface via RunMetrics (inner
    # hierarchy decisions stay trace-only, so this is a subset).
    assert metrics.decision_provenance
    assert len(metrics.decision_provenance) <= len(spans)
    for row in metrics.decision_provenance:
        assert row["schema"] == PROVENANCE_SCHEMA
        assert {"t", "controller", "utility", "rejected", "search"} <= set(
            row
        )


def test_provenance_off_keeps_decisions_bit_identical(provenance_setup):
    """With telemetry (or just provenance) off, no record is attached
    and the decision itself is unchanged."""
    search, start, workloads = provenance_setup
    search.perf_pwr.optimize(workloads)
    runtime.enable()
    try:
        enabled = search.search(start, workloads, 300.0)
    finally:
        runtime.disable()
    disabled = search.search(start, workloads, 300.0)
    assert disabled.provenance is None
    assert disabled.actions == enabled.actions
    assert disabled.predicted_utility == enabled.predicted_utility
    assert disabled.expansions == enabled.expansions
    # Provenance can also be switched off on its own.
    runtime.enable(collect_provenance=False)
    try:
        opted_out = search.search(start, workloads, 300.0)
    finally:
        runtime.disable()
    assert opted_out.provenance is None
    assert opted_out.actions == enabled.actions


def test_collector_compacts_ranks_and_relabels():
    class _A:  # stand-in action types
        pass

    class _B:
        pass

    collector = ProvenanceCollector(top_k=3)
    for index in range(80):  # overflow _NOTE_LIMIT to force compaction
        collector.note_candidate(float(index), (_A(),))
    collector.note_candidate(1000.0, (_A(), _B()))  # the future winner
    collector.note_pruned(5, 0.7)
    collector.note_pruned(3, 0.2)
    record = collector.build(
        utility={"total": 1000.0},
        chosen_actions=("_A", "_B"),
        predicted_utility=1000.0,
        search={},
    )
    # The winner survived compaction and is not listed as its own rival.
    assert all(
        candidate.actions != ("_A", "_B") for candidate in record.rejected
    )
    dominated = [c for c in record.rejected if c.reason == "dominated"]
    assert len(dominated) == 3  # top_k
    scores = [c.score for c in dominated]
    assert scores == sorted(scores, reverse=True)
    (pruned,) = [c for c in record.rejected if c.reason == "pruned"]
    assert pruned.count == 8 and pruned.score == pytest.approx(0.2)
    # Fault debt relabels the pruning evidence.
    record.apply_fault_debit(12.5)
    assert record.fault_debit == 12.5
    assert not any(c.reason == "pruned" for c in record.rejected)
    assert any(c.reason == "fault-debited" for c in record.rejected)
    payload = record.to_attrs()
    assert payload["schema"] == PROVENANCE_SCHEMA
    json.dumps(payload)  # event payload must be JSON-encodable


# ---------------------------------------------------------------------------
# worker trace propagation (fork-process executor)
# ---------------------------------------------------------------------------


def _traced_parallel_run(tmp_path, testbed, executor: str) -> list[dict]:
    from repro.core.search import AdaptationSearch, SearchSettings
    from repro.testbed.scenarios import (
        _global_perf_pwr,
        initial_configuration,
    )

    search = AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=SearchSettings(
            self_aware=True,
            incremental=True,
            parallel_workers=2,
            parallel_executor=executor,
            # Worker spans come from the A* expansion rounds; the
            # walkers evaluate in-process (pin against the
            # MISTRAL_SEARCH_STRATEGY env leg).
            strategy="astar",
        ),
    )
    workloads = {
        name: 45.0 + 5.0 * index
        for index, name in enumerate(testbed.applications.names())
    }
    path = tmp_path / "trace.jsonl"
    runtime.enable(jsonl_path=str(path))
    try:
        search.perf_pwr.optimize(workloads)
        search.search(initial_configuration(testbed), workloads, 300.0)
        search.close_executor()
        runtime.flush()
    finally:
        runtime.disable()
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_process_executor_worker_spans_survive_merge(tmp_path):
    """Worker spans recorded in forked children are merged back into
    the parent trace with unique seqs and resolvable parent links."""
    from repro.testbed import make_testbed

    records = _traced_parallel_run(
        tmp_path, make_testbed(app_count=2, seed=0), "process"
    )
    seqs = [r["seq"] for r in records if "seq" in r]
    assert len(seqs) == len(set(seqs)), "merge produced duplicate seqs"
    by_seq = {r["seq"]: r for r in records if "seq" in r}
    for record in records:
        parent = record.get("parent")
        if parent is not None:
            assert parent in by_seq, (
                f"dangling parent {parent} on {record.get('name')}"
            )
    worker_spans = [
        r
        for r in records
        if r.get("kind") == "span"
        and str(r.get("name", "")).startswith("worker.")
    ]
    assert worker_spans, "no worker spans survived the merge"
    for span in worker_spans:
        assert span["attrs"].get("worker"), "worker span lost its pid"
        assert span.get("dur", 0.0) >= 0.0
        # Worker timestamps live on the parent's timeline (the fork
        # shares CLOCK_MONOTONIC), so they must not be wildly offset.
        assert span["t"] >= 0.0
    merged = [
        r
        for r in records
        if r.get("kind") == "event"
        and r.get("name") == "parallel.worker_segments_merged"
    ]
    assert merged, "executor close did not report the merge"
    assert sum(e["attrs"]["records"] for e in merged) >= len(worker_spans)


# ---------------------------------------------------------------------------
# trace toolkit scripts
# ---------------------------------------------------------------------------


def _sample_decision_trace(tmp_path) -> Path:
    """A minimal but realistic trace: one controller.decision span with
    its decision.provenance event, plus a profile.phases event."""
    path = tmp_path / "sample.jsonl"
    collector = ProvenanceCollector()
    collector.note_candidate(10.0, ())
    collector.note_pruned(4, 0.5)
    record = collector.build(
        utility={
            "steady": 9.0,
            "transient": 3.0,
            "total": 12.0,
            "predicted_utility": 12.0,
        },
        chosen_actions=("AddVm",),
        predicted_utility=12.0,
        search={"expansions": 7, "children_pruned": 4},
    )
    runtime.enable(jsonl_path=str(path))
    try:
        with runtime.span(
            "controller.decision",
            controller="L1",
            t_sim=120.0,
            actions=["AddVm"],
            predicted_utility=12.0,
            expansions=7,
            decision_seconds=0.5,
        ):
            runtime.event("decision.provenance", **record.to_attrs())
        runtime.event(
            "profile.phases",
            phases={
                "enumerate": {"wall": 0.01, "cpu": 0.01, "calls": 2},
                "score": {"wall": 0.02, "cpu": 0.02, "calls": 2},
            },
            wall_seconds=0.05,
            expansions=7,
        )
    finally:
        runtime.disable()
    return path


def test_trace_query_prints_decision_breakdown(tmp_path, capsys):
    trace_query = _load_script("trace_query")
    path = _sample_decision_trace(tmp_path)
    assert trace_query.main([str(path), "--decision", "1"]) == 0
    out = capsys.readouterr().out
    assert "decision #1" in out
    assert "controller=L1" in out
    assert "AddVm" in out
    assert "steady" in out and "transient" in out
    assert "dominated" in out and "pruned x4" in out
    # Filter mode and hotspots keep working on the same trace.
    assert trace_query.main([str(path), "--name", "controller.*"]) == 0
    assert "controller.decision" in capsys.readouterr().out
    assert trace_query.main([str(path), "--decisions"]) == 0


def test_trace_query_unknown_decision_fails(tmp_path):
    trace_query = _load_script("trace_query")
    path = _sample_decision_trace(tmp_path)
    assert trace_query.main([str(path), "--decision", "99"]) == 1


def test_trace_diff_flags_divergence(tmp_path, capsys):
    trace_diff = _load_script("trace_diff")
    base = _sample_decision_trace(tmp_path)
    twin_dir = tmp_path / "twin"
    twin_dir.mkdir()
    twin = _sample_decision_trace(twin_dir)

    assert trace_diff.main([str(base), str(twin), "--strict"]) == 0
    assert "identical" in capsys.readouterr().out

    # Doctor the twin's decision: same layout, different action chain.
    doctored = []
    for line in twin.read_text().splitlines():
        record = json.loads(line)
        if record.get("name") == "controller.decision":
            record["attrs"]["actions"] = ["RemoveVm"]
        doctored.append(json.dumps(record))
    twin.write_text("\n".join(doctored) + "\n")
    assert trace_diff.main([str(base), str(twin), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "DIVERGE at decision #1" in out
    assert trace_diff.main([str(base), str(twin)]) == 0  # non-strict


def test_metrics_export_renders_prometheus_text(tmp_path):
    export = _load_script("metrics_export")
    path = tmp_path / "trace.jsonl"
    runtime.enable(jsonl_path=str(path))
    try:
        runtime.registry.counter("search.expansions").inc(5)
        histogram = runtime.registry.histogram(
            "controller.decision_seconds", bounds=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        runtime.emit_metrics_snapshot()
    finally:
        runtime.disable()
    out = tmp_path / "metrics.prom"
    assert export.main([str(path), "--output", str(out)]) == 0
    text = out.read_text()
    assert "# TYPE mistral_search_expansions counter" in text
    assert "mistral_search_expansions 5" in text
    # Buckets are cumulative and capped by the +Inf bucket.
    assert 'le="0.1"} 1' in text
    assert 'le="1"} 2' in text
    assert 'le="+Inf"} 3' in text
    assert "mistral_controller_decision_seconds_count 3" in text
    assert 'quantile="0.5"' in text


def test_metrics_export_requires_snapshot(tmp_path):
    export = _load_script("metrics_export")
    path = tmp_path / "empty.jsonl"
    runtime.enable(jsonl_path=str(path))
    runtime.disable()
    assert export.main([str(path)]) == 1


def test_telemetry_report_counts_malformed_lines(tmp_path, capsys):
    report = _load_script("telemetry_report")
    path = tmp_path / "torn.jsonl"
    runtime.enable(jsonl_path=str(path))
    try:
        runtime.event("tick", n=1)
        runtime.emit_metrics_snapshot()
    finally:
        runtime.disable()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "kind": "event", "name": "tr\n')  # torn
        handle.write("[1, 2, 3]\n")  # valid JSON, not a record
    events = report.read_trace(path)
    assert events.malformed_lines == 2
    rollup = report.build_report(events)
    assert rollup["malformed_lines"] == 2
    assert report.main([str(path)]) == 0
    assert "2 malformed line(s)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# perf-regression gate
# ---------------------------------------------------------------------------


def _tolerances():
    import importlib.util as util

    path = REPO_ROOT / "benchmarks" / "perf" / "baseline_data.py"
    spec = util.spec_from_file_location("baseline_data", path)
    module = util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.PERF_TOLERANCES


def _measurement_matching(tolerances) -> dict:
    """A payload that reproduces the recorded numbers exactly."""
    return {
        "meta": {
            "sizes": tolerances["sizes"],
            "runs": tolerances["runs"],
        },
        "search": {
            scenario: dict(row)
            for scenario, row in tolerances["search"].items()
        },
        "phases": {
            name: dict(row) for name, row in tolerances["phases"].items()
        },
    }


def test_check_perf_passes_on_recorded_baseline():
    check_perf = _load_script("check_perf")
    tolerances = _tolerances()
    checks = check_perf.compare(
        _measurement_matching(tolerances), tolerances
    )
    assert checks
    assert all(row["ok"] for row in checks)
    assert check_perf.render(checks)


def test_check_perf_fails_on_doubled_phase_times(tmp_path):
    """The acceptance scenario: a 2x phase-time regression must trip
    the gate (cpu_ratio is recorded below 2.0)."""
    check_perf = _load_script("check_perf")
    tolerances = _tolerances()
    assert tolerances["cpu_ratio"] < 2.0
    doctored = _measurement_matching(tolerances)
    for row in doctored["phases"].values():
        row["cpu"] *= 2.0
        row["wall"] *= 2.0
    checks = check_perf.compare(doctored, tolerances)
    failed = [row for row in checks if row["gated"] and not row["ok"]]
    assert failed, "2x phase regression did not trip the gate"
    assert all("cpu_seconds" in row["check"] for row in failed)
    # Gated phases above the noise floor all tripped.
    floor = tolerances["min_gate_cpu_seconds"]
    gated_phases = [
        name
        for name, row in tolerances["phases"].items()
        if row["cpu"] >= floor
    ]
    assert len(failed) == len(gated_phases)
    # And through the CLI: non-zero exit on the doctored payload.
    payload = tmp_path / "doctored.json"
    payload.write_text(json.dumps(doctored))
    assert check_perf.main(["--input", str(payload)]) == 1


def test_check_perf_fails_on_counter_drift():
    """Expansion-count drift is a behaviour change, not noise: exact
    match required no matter how generous the timing ratio."""
    check_perf = _load_script("check_perf")
    tolerances = _tolerances()
    doctored = _measurement_matching(tolerances)
    scenario = next(iter(doctored["search"]))
    doctored["search"][scenario]["total_expansions"] += 1
    checks = check_perf.compare(doctored, tolerances, cpu_ratio=1000.0)
    failed = [row for row in checks if row["gated"] and not row["ok"]]
    assert [row["check"] for row in failed] == [
        f"{scenario}: total_expansions"
    ]


def test_check_perf_flags_missing_scenarios_and_phases():
    check_perf = _load_script("check_perf")
    tolerances = _tolerances()
    doctored = _measurement_matching(tolerances)
    doctored["search"].pop(next(iter(doctored["search"])))
    doctored["phases"].pop(next(iter(doctored["phases"])))
    checks = check_perf.compare(doctored, tolerances)
    failed = {row["check"] for row in checks if not row["ok"]}
    assert any("present" in name for name in failed)
