"""Tests for the shared utility estimator."""

import pytest

from repro.core.config import Configuration, Placement
from repro.core.estimator import UtilityEstimator


def test_estimate_contains_all_components(estimator, base_configuration):
    workloads = {"RUBiS-1": 30.0, "RUBiS-2": 30.0}
    estimate = estimator.estimate(base_configuration, workloads)
    assert set(estimate.response_times) == {"RUBiS-1", "RUBiS-2"}
    assert estimate.watts > 100.0
    assert estimate.power_rate < 0.0
    assert estimate.total_rate == pytest.approx(
        estimate.perf_rate + estimate.power_rate
    )
    assert estimate.busy_cpu > 0.0


def test_estimates_are_cached(estimator, base_configuration):
    workloads = {"RUBiS-1": 31.0, "RUBiS-2": 29.0}
    before = estimator.evaluations
    first = estimator.estimate(base_configuration, workloads)
    mid = estimator.evaluations
    second = estimator.estimate(base_configuration, workloads)
    assert mid == before + 1
    assert estimator.evaluations == mid
    assert second is first


def test_cache_distinguishes_workloads(estimator, base_configuration):
    a = estimator.estimate(base_configuration, {"RUBiS-1": 10.0, "RUBiS-2": 10.0})
    b = estimator.estimate(base_configuration, {"RUBiS-1": 40.0, "RUBiS-2": 40.0})
    assert a.perf_rate != b.perf_rate or a.watts != b.watts


def test_meeting_targets_yields_positive_perf_rate(estimator, base_configuration):
    estimate = estimator.estimate(
        base_configuration, {"RUBiS-1": 20.0, "RUBiS-2": 20.0}
    )
    assert estimate.perf_rate > 0.0
    assert all(rate > 0 for rate in estimate.app_perf_rates.values())


def test_saturation_yields_penalties(estimator, base_configuration):
    estimate = estimator.estimate(
        base_configuration, {"RUBiS-1": 95.0, "RUBiS-2": 95.0}
    )
    assert estimate.perf_rate < 0.0


def test_transient_rates_apply_deltas(estimator, base_configuration):
    workloads = {"RUBiS-1": 30.0, "RUBiS-2": 30.0}
    base = estimator.estimate(base_configuration, workloads)
    perf_same, power_same = estimator.transient_rates(base, workloads, {}, 0.0)
    assert perf_same == pytest.approx(base.perf_rate)
    assert power_same == pytest.approx(base.power_rate)

    # A response-time delta that pushes an app over the target flips
    # its reward into a penalty.
    big_delta = {"RUBiS-1": 10.0}
    perf_hit, power_hit = estimator.transient_rates(
        base, workloads, big_delta, 50.0
    )
    assert perf_hit < perf_same
    assert power_hit < power_same


def test_clear_cache(estimator, base_configuration):
    workloads = {"RUBiS-1": 33.0, "RUBiS-2": 33.0}
    estimator.estimate(base_configuration, workloads)
    estimator.clear_cache()
    before = estimator.evaluations
    estimator.estimate(base_configuration, workloads)
    assert estimator.evaluations == before + 1
