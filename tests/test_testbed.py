"""Tests for the testbed rig, metrics, and scenario builders."""

import pytest

from repro.testbed.metrics import (
    ActionRecord,
    RunMetrics,
    TimeSeries,
    summarize_runs,
)
from repro.testbed.scenarios import (
    HOSTS_FOR_APPS,
    build_mistral,
    level1_host_groups,
    make_testbed,
)


# -- TimeSeries --------------------------------------------------------------


def test_time_series_basics():
    series = TimeSeries("x")
    series.append(0.0, 1.0)
    series.append(10.0, 3.0)
    assert len(series) == 2
    assert series.mean() == pytest.approx(2.0)
    assert series.maximum() == 3.0
    assert series.total() == 4.0
    assert series.last() == 3.0
    assert list(series) == [(0.0, 1.0), (10.0, 3.0)]


def test_time_series_rejects_time_regression():
    series = TimeSeries("x")
    series.append(10.0, 1.0)
    with pytest.raises(ValueError):
        series.append(5.0, 1.0)


def test_time_series_cumulative_and_window():
    series = TimeSeries("x")
    for step in range(5):
        series.append(step * 10.0, 1.0)
    cumulative = series.cumulative()
    assert cumulative.values == [1.0, 2.0, 3.0, 4.0, 5.0]
    window = series.window(10.0, 30.0)
    assert window.times == [10.0, 20.0, 30.0]


def test_fraction_above():
    series = TimeSeries("x")
    for value in (0.1, 0.5, 0.9, 0.2):
        series.append(len(series.values) * 1.0, value)
    assert series.fraction_above(0.4) == pytest.approx(0.5)
    assert TimeSeries("empty").fraction_above(1.0) == 0.0


def test_empty_series_guards():
    with pytest.raises(ValueError):
        TimeSeries("e").last()
    assert TimeSeries("e").mean() == 0.0


def test_run_metrics_summary():
    run = RunMetrics(strategy="s")
    run.response_times["app"] = TimeSeries("app")
    run.response_times["app"].append(0.0, 0.5)
    run.utility_increments.append(0.0, 2.0)
    run.power_watts.append(0.0, 100.0)
    run.actions.append(ActionRecord(0.0, 5.0, "c", "migrate(x)"))
    assert run.cumulative_utility() == 2.0
    assert run.action_count() == 1
    assert run.target_violation_fraction("app", 0.4) == 1.0
    rows = summarize_runs([run], target_seconds=0.4)
    assert rows[0]["strategy"] == "s"
    assert rows[0]["viol_app"] == 1.0


# -- scenario builders ---------------------------------------------------------


def test_hosts_for_apps_table():
    assert HOSTS_FOR_APPS == {
        1: 2, 2: 4, 3: 6, 4: 8, 5: 10, 6: 12,
        10: 20, 16: 32, 25: 50,
    }
    # Every tier keeps the paper's 2-hosts-per-app ratio.
    assert all(hosts == 2 * apps for apps, hosts in HOSTS_FOR_APPS.items())
    with pytest.raises(ValueError):
        make_testbed(app_count=9)


def test_level1_host_groups():
    assert level1_host_groups(tuple(f"h{i}" for i in range(4))) == [
        ("h0", "h1", "h2", "h3")
    ]
    groups = level1_host_groups(tuple(f"h{i}" for i in range(8)))
    assert len(groups) == 2
    assert sum(len(group) for group in groups) == 8


# -- testbed construction ----------------------------------------------------------


def test_testbed_anchors(small_testbed):
    target = small_testbed.utility.parameters.target_response_time
    assert 0.3 <= target <= 0.5  # the paper's ~400 ms anchor
    planning = small_testbed.planning_utility.parameters.target_response_time
    assert planning < target
    assert small_testbed.utility.parameters.reward_scale > 1.0


def test_testbed_model_differs_from_truth(small_testbed):
    truth = small_testbed.truth_parameters.tier_demands
    model = small_testbed.model_parameters.tier_demands
    assert any(
        abs(model[key] - truth[key]) > 1e-9 for key in truth
    )


def test_testbed_rejects_missing_traces(small_testbed):
    from repro.testbed import Testbed

    with pytest.raises(ValueError):
        Testbed(
            small_testbed.applications,
            {},
            small_testbed.host_ids,
        )


def test_default_configuration_is_feasible(small_testbed):
    config = small_testbed.default_configuration()
    assert config.is_candidate(small_testbed.catalog, small_testbed.limits)
    caps = {p.cpu_cap for p in config.placements.values()}
    assert caps == {0.4}


def test_workloads_at_covers_all_apps(small_testbed):
    workloads = small_testbed.workloads_at(0.0)
    assert set(workloads) == set(small_testbed.applications.names())
    assert all(rate >= 0 for rate in workloads.values())


# -- short end-to-end runs ------------------------------------------------------------


def test_short_mistral_run_produces_metrics(small_testbed):
    controller, initial = build_mistral(small_testbed)
    metrics = small_testbed.run(
        controller, initial, "mistral-short", horizon=1800.0
    )
    assert len(metrics.power_watts) == 16  # 1800 s / 120 s + t=0 sample
    assert len(metrics.utility_increments) == len(metrics.power_watts)
    assert set(metrics.response_times) == {"RUBiS-1", "RUBiS-2"}
    assert metrics.hosts_powered.values[0] >= 1
    assert all(value > 0 for value in metrics.power_watts.values)


def test_runs_are_deterministic(small_testbed):
    controller_a, initial = build_mistral(small_testbed)
    metrics_a = small_testbed.run(controller_a, initial, "det", horizon=1200.0)
    controller_b, _ = build_mistral(small_testbed)
    metrics_b = small_testbed.run(controller_b, initial, "det", horizon=1200.0)
    assert metrics_a.utility_increments.values == (
        metrics_b.utility_increments.values
    )
    assert metrics_a.power_watts.values == metrics_b.power_watts.values


def test_measured_rt_is_bounded_in_overload(small_testbed):
    """The closed-loop cap keeps measured response times finite."""
    from repro.testbed.scenarios import build_perf_cost

    controller, initial = build_perf_cost(small_testbed)
    metrics = small_testbed.run(
        controller, initial, "bounded", horizon=2400.0
    )
    for series in metrics.response_times.values():
        assert series.maximum() < 60.0
