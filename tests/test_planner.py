"""Tests for the diff-based transition planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Configuration, ConstraintLimits, Placement
from repro.core.planner import plan_length_seconds, plan_transition

LIMITS = ConstraintLimits()
HOSTS = ("host-0", "host-1", "host-2", "host-3")


def apply_plan(plan, start, catalog):
    state = start
    for action in plan:
        state = action.apply(state, catalog, LIMITS)
    return state


def test_identity_plan_is_empty(base_configuration, catalog):
    assert plan_transition(
        base_configuration, base_configuration, catalog, LIMITS
    ) == []


def test_cap_change_only(base_configuration, catalog):
    target = base_configuration.replace(
        "RUBiS-1-db-0", Placement("host-1", 0.6)
    )
    plan = plan_transition(base_configuration, target, catalog, LIMITS)
    assert len(plan) == 1
    assert apply_plan(plan, base_configuration, catalog) == target


def test_migration_and_power_cycle(base_configuration, catalog):
    placements = dict(base_configuration.placements)
    placements["RUBiS-1-db-0"] = Placement("host-2", 0.4)
    placements["RUBiS-2-db-0"] = Placement("host-0", 0.4)
    # host-1 goes dark, host-2 lights up.
    target = Configuration(placements, {"host-0", "host-2"})
    plan = plan_transition(base_configuration, target, catalog, LIMITS)
    final = apply_plan(plan, base_configuration, catalog)
    assert final == target
    kinds = [action.kind for action in plan]
    assert "power_on" in kinds and "power_off" in kinds
    # Boot before migrating onto the new host; shut down last.
    assert kinds.index("power_on") < kinds.index("migrate")
    assert kinds[-1] == "power_off"


def test_replica_addition_with_exact_identity(base_configuration, catalog):
    target = base_configuration.replace(
        "RUBiS-1-db-1", Placement("host-0", 0.3)
    )
    plan = plan_transition(base_configuration, target, catalog, LIMITS)
    final = apply_plan(plan, base_configuration, catalog)
    assert final == target


def test_replica_removal(base_configuration, catalog):
    grown = base_configuration.replace(
        "RUBiS-1-db-1", Placement("host-0", 0.3)
    )
    plan = plan_transition(grown, base_configuration, catalog, LIMITS)
    final = apply_plan(plan, grown, catalog)
    assert final == base_configuration


def test_decreases_precede_increases(base_configuration, catalog):
    target = base_configuration.replace(
        "RUBiS-1-db-0", Placement("host-1", 0.2)
    ).replace("RUBiS-2-db-0", Placement("host-1", 0.6))
    plan = plan_transition(base_configuration, target, catalog, LIMITS)
    kinds = [action.kind for action in plan]
    assert kinds.index("decrease_cpu") < kinds.index("increase_cpu")
    assert apply_plan(plan, base_configuration, catalog) == target


def test_plan_length_seconds(base_configuration, catalog):
    target = base_configuration.replace(
        "RUBiS-1-db-0", Placement("host-0", 0.4)
    )
    plan = plan_transition(base_configuration, target, catalog, LIMITS)
    durations = {("migrate", "db"): 30.0}
    assert plan_length_seconds(plan, durations, catalog) == pytest.approx(30.0)


@st.composite
def feasible_configs(draw, catalog):
    """Random feasible configurations over the 4-host pool."""
    placements = {}
    loads = {host: 0.0 for host in HOSTS}
    counts = {host: 0 for host in HOSTS}
    for descriptor in catalog:
        required = descriptor.tier_name != "db" or descriptor.vm_id.endswith(
            "-0"
        )
        place = required or draw(st.booleans())
        # Tier minimums: always place replica 0 of each tier.
        if not descriptor.vm_id.endswith("-0") and not place:
            continue
        host_options = [
            host
            for host in HOSTS
            if loads[host] <= 0.6 and counts[host] < 4
        ]
        if not host_options:
            if not required:
                continue
            # A required VM (replica 0 of a tier) must land somewhere
            # or the generated configuration violates tier minimums —
            # which the planner legitimately refuses to reach.  Fall
            # back to the least-loaded host with a free VM slot; the
            # planner's verified actions only validate power state, so
            # slight cap overload is harmless here.
            fallback = [host for host in HOSTS if counts[host] < 4]
            host_options = [min(fallback, key=lambda host: loads[host])]
        host = draw(st.sampled_from(host_options))
        cap = draw(st.sampled_from([0.2, 0.3, 0.4]))
        cap = min(cap, round(0.8 - loads[host], 10))
        if cap < 0.2:
            cap = 0.2
        placements[descriptor.vm_id] = Placement(host, cap)
        loads[host] = round(loads[host] + cap, 10)
        counts[host] += 1
    powered = {p.host_id for p in placements.values()} or {"host-0"}
    return Configuration(placements, powered)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_property_plan_reaches_target(catalog, data):
    current = data.draw(feasible_configs(catalog))
    target = data.draw(feasible_configs(catalog))
    plan = plan_transition(current, target, catalog, LIMITS)
    final = apply_plan(plan, current, catalog)
    # Same caps and hosts for every VM placed in the target, and the
    # same powered set.
    assert final.powered_hosts == target.powered_hosts
    for vm_id, placement in target.placements.items():
        assert final.placement_of(vm_id) == placement
    # No extra active VMs beyond the target's.
    assert set(final.placed_vm_ids()) == set(target.placed_vm_ids())
