"""Pluggable search strategy conformance (DESIGN.md §14).

The contract under test, shared by every backend behind
``SearchSettings.strategy``:

- ``"astar"`` is the pre-refactor exact loop — dispatching through the
  strategy layer must be bit-identical to calling it directly, under
  every executor backing and with the array core on or off.
- The stochastic walkers are deterministic under a fixed seed, return
  a feasible (replayable) plan or an explicit no-op, respect the
  deadline watchdog, and stamp ``SearchOutcome.strategy``.
- Strategy selection flows through ``SearchSettings.strategy``, the
  ``MISTRAL_SEARCH_STRATEGY`` environment variable, ``build_mistral``
  and ``Testbed.run`` — with unknown names failing loudly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.search import (
    STRATEGY_KINDS,
    AdaptationSearch,
    SearchSettings,
)
from repro.core.strategies import resolve_strategy, resolve_strategy_name
from repro.testbed.scenarios import (
    _global_perf_pwr,
    build_mistral,
    initial_configuration,
)

#: Everything a search outcome decides; ``wall_seconds`` and the
#: ``pool_*`` tallies are measured time, excluded by the contract.
OUTCOME_FIELDS = (
    "actions",
    "final_configuration",
    "predicted_utility",
    "expansions",
    "decision_seconds",
    "pruning_activated",
    "optimal",
    "deadline_aborted",
    "strategy",
)

WALKERS = ("mcts", "annealing")


def _make_search(testbed, **settings_kwargs) -> AdaptationSearch:
    settings = SearchSettings(
        self_aware=True, incremental=True, **settings_kwargs
    )
    return AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=settings,
    )


def _high_workloads(testbed, run: int = 0) -> dict[str, float]:
    """Load that forces a real multi-round search (harness methodology)."""
    return {
        name: 45.0 + 5.0 * index + run
        for index, name in enumerate(testbed.applications.names())
    }


def _run(search, testbed, run: int = 0):
    start = initial_configuration(testbed)
    workloads = _high_workloads(testbed, run)
    try:
        return search.search(start, workloads, 300.0)
    finally:
        search.close_executor()


def _assert_outcomes_identical(reference, candidate) -> None:
    for field in OUTCOME_FIELDS:
        assert getattr(candidate, field) == getattr(reference, field), field


# -- selection plumbing --------------------------------------------------------


def test_strategy_kinds_registry_complete():
    """Every declared strategy kind resolves to a runnable backend."""
    assert STRATEGY_KINDS == ("astar", "mcts", "annealing")
    for name in STRATEGY_KINDS:
        assert resolve_strategy(name).name == name


def test_unknown_strategy_fails_loudly():
    with pytest.raises(ValueError, match="unknown search strategy"):
        resolve_strategy_name("beam")
    with pytest.raises(ValueError):
        SearchSettings(strategy="beam")


def test_env_var_selects_strategy(monkeypatch, small_testbed):
    """``strategy=None`` defers to MISTRAL_SEARCH_STRATEGY."""
    monkeypatch.setenv("MISTRAL_SEARCH_STRATEGY", "annealing")
    assert resolve_strategy_name(None) == "annealing"
    outcome = _run(_make_search(small_testbed), small_testbed)
    assert outcome.strategy == "annealing"
    monkeypatch.delenv("MISTRAL_SEARCH_STRATEGY")
    assert resolve_strategy_name(None) == "astar"


def test_env_var_unknown_name_raises(monkeypatch):
    monkeypatch.setenv("MISTRAL_SEARCH_STRATEGY", "hillclimb")
    with pytest.raises(ValueError, match="hillclimb"):
        resolve_strategy_name(None)


def test_build_mistral_wires_strategy(small_testbed):
    controller, _ = build_mistral(small_testbed, search_strategy="mcts")
    searches = [level1.search for level1 in controller.level1] + [
        controller.level2.search
    ]
    assert searches
    for search in searches:
        assert search.settings.strategy == "mcts"


def test_testbed_run_repoints_strategy(small_testbed):
    controller, start = build_mistral(small_testbed)
    try:
        small_testbed.run(
            controller,
            start,
            "mistral",
            horizon=900.0,
            search_strategy="annealing",
        )
    finally:
        if hasattr(controller, "shutdown_parallel"):
            controller.shutdown_parallel()
    for level1 in controller.level1:
        assert level1.search.settings.strategy == "annealing"
    assert controller.level2.search.settings.strategy == "annealing"


def test_outcome_stamps_strategy(small_testbed):
    for name in STRATEGY_KINDS:
        outcome = _run(_make_search(small_testbed, strategy=name), small_testbed)
        assert outcome.strategy == name


# -- astar bit-identity --------------------------------------------------------


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
@pytest.mark.parametrize("array_core", [True, False])
def test_astar_dispatch_bit_identical(executor, array_core, small_testbed):
    """``strategy="astar"`` through the dispatcher reproduces the direct
    A* loop exactly — across executor backings and the array core."""
    workers = 1 if executor == "serial" else 2
    kwargs = dict(
        parallel_workers=workers,
        parallel_executor=executor,
        array_core=array_core,
    )
    direct_search = _make_search(small_testbed, **kwargs)
    start = initial_configuration(small_testbed)
    workloads = _high_workloads(small_testbed)
    try:
        direct = direct_search._astar_search(
            start, workloads, 300.0, None, None, None
        )
    finally:
        direct_search.close_executor()
    dispatched = _run(
        _make_search(small_testbed, strategy="astar", **kwargs),
        small_testbed,
    )
    for field in OUTCOME_FIELDS:
        if field == "strategy":
            continue  # the dispatcher stamps it post-hoc
        assert getattr(dispatched, field) == getattr(direct, field), field
    assert dispatched.strategy == "astar"


def test_astar_default_unchanged(small_testbed, monkeypatch):
    """No strategy anywhere (settings or env) → the exact A*."""
    monkeypatch.delenv("MISTRAL_SEARCH_STRATEGY", raising=False)
    outcome = _run(_make_search(small_testbed), small_testbed)
    assert outcome.strategy == "astar"


# -- walker conformance --------------------------------------------------------


@pytest.mark.parametrize("name", WALKERS)
def test_walker_seed_determinism(name, small_testbed):
    """Two runs with the same seed decide identically; the wall clock
    only feeds the (disabled) watchdog."""
    first = _run(
        _make_search(small_testbed, strategy=name, strategy_seed=7),
        small_testbed,
    )
    second = _run(
        _make_search(small_testbed, strategy=name, strategy_seed=7),
        small_testbed,
    )
    _assert_outcomes_identical(first, second)


@pytest.mark.parametrize("name", WALKERS)
def test_walker_plan_is_replayable(name, small_testbed):
    """The returned plan applies cleanly action-by-action from the
    start configuration and lands exactly on ``final_configuration``
    (feasible), or is the explicit no-op (empty plan, start config)."""
    outcome = _run(_make_search(small_testbed, strategy=name), small_testbed)
    configuration = initial_configuration(small_testbed)
    for action in outcome.actions:
        configuration = action.apply(
            configuration, small_testbed.catalog, small_testbed.limits
        )
    assert configuration == outcome.final_configuration
    if not outcome.actions:
        assert outcome.final_configuration == initial_configuration(
            small_testbed
        )


@pytest.mark.parametrize("name", WALKERS)
def test_walker_beats_or_matches_null_plan(name, small_testbed):
    """Anytime invariant: the incumbent starts at the explicit null
    plan, so the returned plan never predicts worse than doing
    nothing."""
    start = initial_configuration(small_testbed)
    workloads = _high_workloads(small_testbed)
    null_value = (
        300.0
        * small_testbed.estimator.estimate(start, workloads).total_rate
    )
    search = _make_search(small_testbed, strategy=name)
    try:
        outcome = search.search(start, workloads, 300.0)
    finally:
        search.close_executor()
    assert outcome.predicted_utility >= null_value - 1e-9


@pytest.mark.parametrize("name", STRATEGY_KINDS)
def test_deadline_watchdog_bounds_overshoot(name, small_testbed):
    """An already-expired deadline aborts every strategy almost
    immediately — the cooperative check runs at least once per
    iteration/rollout step, so the overshoot is bounded by one step,
    and the outcome still carries a feasible incumbent."""
    search = _make_search(
        small_testbed, strategy=name, deadline_seconds=1e-9
    )
    start = initial_configuration(small_testbed)
    workloads = _high_workloads(small_testbed)
    try:
        outcome = search.search(start, workloads, 300.0)
    finally:
        search.close_executor()
    assert outcome.deadline_aborted
    # Generous bound: one expansion/rollout step, not a full search.
    assert outcome.wall_seconds < 30.0
    configuration = start
    for action in outcome.actions:
        configuration = action.apply(
            configuration, small_testbed.catalog, small_testbed.limits
        )
    assert configuration == outcome.final_configuration


@pytest.mark.parametrize("name", WALKERS)
def test_walker_deadline_none_is_deterministic_anytime(name, small_testbed):
    """Without a deadline the walkers never read the wall clock on the
    decision path: a deadline far in the future decides exactly like no
    deadline at all."""
    relaxed = _run(
        _make_search(small_testbed, strategy=name, deadline_seconds=3600.0),
        small_testbed,
    )
    unbounded = _run(
        _make_search(small_testbed, strategy=name), small_testbed
    )
    for field in OUTCOME_FIELDS:
        if field == "deadline_aborted":
            continue
        assert getattr(relaxed, field) == getattr(unbounded, field), field
    assert not relaxed.deadline_aborted
    assert not unbounded.deadline_aborted


@pytest.mark.parametrize("name", WALKERS)
def test_walker_emits_strategy_telemetry(name, small_testbed):
    """Each walker run lands the per-strategy counters and the
    dispatcher's ``search.strategy`` selection counter."""
    from repro import telemetry

    telemetry.enable()
    try:
        _run(_make_search(small_testbed, strategy=name), small_testbed)
        snapshot = telemetry.runtime.registry.snapshot()
        counters = snapshot["counters"]
        assert counters.get(f"search.strategy.{name}.runs", 0) >= 1
        assert counters.get(f"search.strategy.{name}.iterations", 0) >= 1
        assert counters.get(f"search.strategy.{name}.evaluations", 0) >= 1
    finally:
        telemetry.disable()


# -- chaos: injected stalls and the watchdog -----------------------------------


@pytest.mark.parametrize("name", WALKERS)
def test_walker_stall_trips_watchdog_but_returns_incumbent(
    name, small_testbed
):
    """An injected stall longer than the deadline aborts the walker on
    the very next cooperative check — the outcome is stamped
    ``deadline_aborted``, still carries the walker's name, and the
    incumbent plan replays cleanly (the anytime guarantee survives
    chaos)."""
    from repro.faults import FaultConfig, FaultInjector

    search = _make_search(
        small_testbed, strategy=name, deadline_seconds=0.3
    )
    search.fault_injector = FaultInjector(
        FaultConfig(
            seed=4,
            strategy_stall_probability=1.0,
            strategy_stall_seconds=0.6,
        )
    )
    outcome = _run(search, small_testbed)
    assert outcome.deadline_aborted
    assert outcome.strategy == name
    assert search.fault_injector.stats.strategy_stalls >= 1
    # The incumbent is a feasible, replayable plan (possibly the
    # explicit no-op) — never a torn partial result.
    configuration = initial_configuration(small_testbed)
    for action in outcome.actions:
        configuration = action.apply(
            configuration, small_testbed.catalog, small_testbed.limits
        )
    assert configuration == outcome.final_configuration


def test_watchdog_abort_steps_controller_ladder_down(small_testbed):
    """A stall-induced watchdog abort is a resilience fault: the
    controller tallies it, feeds the degradation ladder, and the pruned
    rung it lands on pins the next search back to the exact A*."""
    from repro.core.controller import MistralController
    from repro.faults import DegradationSettings, FaultConfig, FaultInjector
    from repro.workload.monitor import WorkloadMonitor

    search = _make_search(
        small_testbed, strategy="mcts", deadline_seconds=0.3
    )
    search.fault_injector = FaultInjector(
        FaultConfig(
            seed=4,
            strategy_stall_probability=1.0,
            strategy_stall_seconds=0.6,
        )
    )
    controller = MistralController(
        name="chaos-L1",
        search=search,
        monitor=WorkloadMonitor(band_width=8.0),
    )
    controller.enable_resilience(DegradationSettings(escalate_after=1))
    try:
        decision = controller.on_sample(
            0.0,
            _high_workloads(small_testbed),
            initial_configuration(small_testbed),
        )
    finally:
        search.close_executor()
    assert decision is not None
    assert decision.outcome.deadline_aborted
    assert controller.stats.watchdog_aborts == 1
    assert controller.resilience.level == "pruned"
    pruned = controller._search_settings_for_level("pruned")
    assert pruned.strategy == "astar"
    assert pruned.self_aware


def test_walker_settings_validated():
    with pytest.raises(ValueError):
        SearchSettings(mcts_iterations=0)
    with pytest.raises(ValueError):
        SearchSettings(annealing_cooling=1.5)
    with pytest.raises(ValueError):
        SearchSettings(walker_branch_limit=0)


def test_settings_are_immutable_value_objects():
    """Strategy fields ride the frozen dataclass like every other
    setting — ``dataclasses.replace`` is the way to vary them."""
    settings = SearchSettings(strategy="mcts", strategy_seed=3)
    replaced = dataclasses.replace(settings, strategy="annealing")
    assert settings.strategy == "mcts"
    assert replaced.strategy == "annealing"
    assert replaced.strategy_seed == 3
