"""End-to-end integration tests: short runs of every strategy.

Full-horizon comparisons live in benchmarks/; these runs cover the
first 70 minutes (through the start of the flash-crowd ramp) and check
the machinery, not the headline numbers.
"""

import pytest

from repro.testbed.scenarios import (
    build_mistral,
    build_perf_cost,
    build_perf_pwr,
    build_pwr_cost,
)

HORIZON = 70 * 60.0


@pytest.fixture(scope="module")
def tb():
    from repro.testbed import make_testbed

    return make_testbed(app_count=2, seed=0)


@pytest.mark.parametrize(
    "builder",
    [build_mistral, build_perf_pwr, build_perf_cost, build_pwr_cost],
    ids=["mistral", "perf-pwr", "perf-cost", "pwr-cost"],
)
def test_strategy_runs_end_to_end(tb, builder):
    controller, initial = builder(tb)
    metrics = tb.run(controller, initial, "integration", horizon=HORIZON)
    expected_samples = int(HORIZON // 120) + 1
    assert len(metrics.power_watts) == expected_samples
    # Sane physical ranges.
    assert 50.0 <= metrics.mean_power() <= 450.0
    for series in metrics.response_times.values():
        assert 0.0 < series.mean() < 10.0
    assert 1 <= metrics.hosts_powered.maximum() <= 4


def test_mistral_meets_targets_at_moderate_load(tb):
    controller, initial = build_mistral(tb)
    metrics = tb.run(controller, initial, "integration", horizon=HORIZON)
    target = tb.utility.parameters.target_response_time
    # The first 70 minutes are light load; misses should be rare.
    for app, series in metrics.response_times.items():
        assert series.fraction_above(target) < 0.3, app


def test_mistral_consolidates_at_light_load(tb):
    controller, initial = build_mistral(tb)
    metrics = tb.run(controller, initial, "integration", horizon=HORIZON)
    # Light load: two hosts suffice most of the time.
    assert metrics.hosts_powered.mean() < 3.0


def test_actions_have_valid_records(tb):
    controller, initial = build_mistral(tb)
    metrics = tb.run(controller, initial, "integration", horizon=HORIZON)
    for record in metrics.actions:
        assert record.end >= record.start >= 0.0
        assert record.controller
        assert record.description


def test_search_power_metered_during_decisions(tb):
    controller, initial = build_mistral(tb)
    metrics = tb.run(controller, initial, "integration", horizon=HORIZON)
    if len(metrics.search_seconds):
        assert metrics.search_power_watts.maximum() > 0.0


def test_hierarchy_stats_populated(tb):
    hierarchy, initial = build_mistral(tb)
    tb.run(hierarchy, initial, "integration", horizon=HORIZON)
    assert hierarchy.level2.stats.invocations > 0
    assert all(
        controller.stats.invocations > 0 for controller in hierarchy.level1
    )
    durations = hierarchy.mean_search_seconds()
    assert durations["overall"] >= 0.0
