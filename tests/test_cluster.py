"""Tests for the cluster substrate: hosts, VMs, transients, execution."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterBusyError
from repro.cluster.host import HostSpec, PhysicalHost, PowerState
from repro.cluster.power_meter import PowerMeter
from repro.cluster.transients import TransientModel, TransientSpec
from repro.cluster.vm import VirtualMachine, VmState
from repro.core.actions import (
    AddReplica,
    IncreaseCpu,
    MigrateVm,
    PowerOffHost,
    PowerOnHost,
)
from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
    VmDescriptor,
)
from repro.power.model import HostPowerModel, SystemPowerModel
from repro.sim.engine import SimulationEngine

LIMITS = ConstraintLimits()


def small_catalog():
    return VmCatalog(
        [
            VmDescriptor("a-web-0", "a", "web"),
            VmDescriptor("a-db-0", "a", "db"),
            VmDescriptor("a-db-1", "a", "db"),
            VmDescriptor("b-web-0", "b", "web"),
        ]
    )


def make_cluster(workloads=None):
    engine = SimulationEngine()
    catalog = small_catalog()
    hosts = [HostSpec("h1"), HostSpec("h2"), HostSpec("h3")]
    power = SystemPowerModel.uniform(["h1", "h2", "h3"], HostPowerModel())
    transients = TransientModel(catalog)  # noise-free
    cluster = Cluster(
        hosts,
        catalog,
        LIMITS,
        engine,
        transients,
        power,
        workload_provider=lambda: workloads or {"a": 50.0, "b": 50.0},
    )
    cluster.deploy(
        Configuration(
            {
                "a-web-0": Placement("h1", 0.4),
                "a-db-0": Placement("h2", 0.6),
                "b-web-0": Placement("h1", 0.4),
            },
            {"h1", "h2"},
        )
    )
    return engine, cluster


# -- host state machine ---------------------------------------------------------


def test_host_power_state_machine():
    host = PhysicalHost(HostSpec("h1"), HostPowerModel(), PowerState.OFF)
    assert not host.is_available()
    host.begin_boot()
    assert host.state is PowerState.BOOTING
    host.complete_boot()
    assert host.is_available()
    host.begin_shutdown()
    host.complete_shutdown()
    assert host.state is PowerState.OFF


def test_host_invalid_transitions_rejected():
    host = PhysicalHost(HostSpec("h1"), HostPowerModel(), PowerState.ON)
    with pytest.raises(RuntimeError):
        host.begin_boot()
    with pytest.raises(RuntimeError):
        host.complete_boot()


def test_host_steady_watts_by_state():
    spec = HostSpec("h1")
    host = PhysicalHost(spec, HostPowerModel(), PowerState.OFF)
    assert host.steady_watts(0.5) == 0.0
    host.begin_boot()
    assert host.steady_watts(0.5) == spec.boot_watts
    host.complete_boot()
    assert host.steady_watts(0.0) == pytest.approx(60.0)


# -- VM state machine --------------------------------------------------------------


def test_vm_lifecycle():
    vm = VirtualMachine(VmDescriptor("x", "a", "web"))
    assert vm.state is VmState.DORMANT
    vm.activate("h1", 0.4)
    assert vm.state is VmState.ACTIVE and vm.host_id == "h1"
    vm.set_cap(0.5)
    assert vm.cpu_cap == 0.5
    vm.begin_migration()
    assert vm.state is VmState.MIGRATING
    assert vm.host_id == "h1"  # serves from the source until cutover
    vm.complete_migration("h2")
    assert vm.host_id == "h2" and vm.state is VmState.ACTIVE
    vm.deactivate()
    assert vm.state is VmState.DORMANT and vm.cpu_cap == 0.0


def test_vm_invalid_transitions():
    vm = VirtualMachine(VmDescriptor("x", "a", "web"))
    with pytest.raises(RuntimeError):
        vm.set_cap(0.5)
    with pytest.raises(RuntimeError):
        vm.begin_migration()
    vm.activate("h1", 0.4)
    with pytest.raises(RuntimeError):
        vm.activate("h1", 0.4)


# -- transient model ---------------------------------------------------------------


def test_migration_footprint_grows_with_load():
    catalog = small_catalog()
    model = TransientModel(catalog)
    config = Configuration(
        {"a-db-0": Placement("h1", 0.4)}, {"h1", "h2"}
    )
    action = MigrateVm("a-db-0", "h2")
    light = model.expected(action, config, {"a": 12.5})
    heavy = model.expected(action, config, {"a": 100.0})
    assert heavy.duration > light.duration
    assert heavy.rt_delta["a"] > light.rt_delta["a"]
    assert heavy.total_power_delta() > light.total_power_delta()


def test_colocated_apps_feel_fraction_of_delta():
    catalog = small_catalog()
    model = TransientModel(catalog)
    config = Configuration(
        {
            "a-db-0": Placement("h1", 0.4),
            "b-web-0": Placement("h1", 0.2),
        },
        {"h1", "h2"},
    )
    spec = model.expected(MigrateVm("a-db-0", "h2"), config, {"a": 50.0, "b": 50.0})
    assert 0.0 < spec.rt_delta["b"] < spec.rt_delta["a"]


def test_power_cycle_footprints():
    catalog = small_catalog()
    model = TransientModel(catalog)
    config = Configuration({}, {"h1"})
    on = model.expected(PowerOnHost("h2"), config, {})
    off = model.expected(PowerOffHost("h1"), config, {})
    assert on.duration == pytest.approx(90.0)
    assert on.power_delta["h2"] == pytest.approx(80.0)
    assert off.duration == pytest.approx(30.0)
    assert off.power_delta["h1"] == pytest.approx(20.0)


def test_sampled_spec_is_noisy_but_close():
    catalog = small_catalog()
    model = TransientModel(catalog, rng=np.random.default_rng(0))
    config = Configuration({"a-db-0": Placement("h1", 0.4)}, {"h1", "h2"})
    action = MigrateVm("a-db-0", "h2")
    expected = model.expected(action, config, {"a": 50.0})
    samples = [model.sample(action, config, {"a": 50.0}) for _ in range(20)]
    durations = [sample.duration for sample in samples]
    assert len(set(durations)) > 1
    assert abs(np.mean(durations) - expected.duration) / expected.duration < 0.15


def test_transient_spec_validation():
    with pytest.raises(ValueError):
        TransientSpec(duration=-1.0)


# -- cluster execution ----------------------------------------------------------------


def test_deploy_sets_host_and_vm_states():
    _, cluster = make_cluster()
    assert cluster.hosts["h1"].state is PowerState.ON
    assert cluster.hosts["h3"].state is PowerState.OFF
    assert cluster.vms["a-web-0"].state is VmState.ACTIVE
    assert cluster.vms["a-db-1"].state is VmState.DORMANT


def test_deploy_rejects_infeasible_configuration():
    engine = SimulationEngine()
    catalog = small_catalog()
    cluster = Cluster(
        [HostSpec("h1")],
        catalog,
        LIMITS,
        engine,
        TransientModel(catalog),
        SystemPowerModel.uniform(["h1"], HostPowerModel()),
        workload_provider=dict,
    )
    with pytest.raises(ValueError):
        cluster.deploy(
            Configuration(
                {
                    "a-web-0": Placement("h1", 0.8),
                    "a-db-0": Placement("h1", 0.8),
                },
                {"h1"},
            )
        )


def test_migration_cuts_over_at_completion():
    engine, cluster = make_cluster()
    cluster.execute_plan([MigrateVm("a-db-0", "h1")])
    engine.run_until(1.0)
    # Still on the source mid-flight.
    assert cluster.configuration.placement_of("a-db-0").host_id == "h2"
    assert cluster.vms["a-db-0"].state is VmState.MIGRATING
    assert cluster.is_adapting()
    engine.run_until(200.0)
    assert cluster.configuration.placement_of("a-db-0").host_id == "h1"
    assert cluster.vms["a-db-0"].state is VmState.ACTIVE
    assert not cluster.is_adapting()


def test_transient_deltas_apply_during_action_only():
    engine, cluster = make_cluster()
    cluster.execute_plan([MigrateVm("a-db-0", "h1")])
    engine.run_until(1.0)
    assert cluster.transient_rt_delta("a") > 0.0
    assert cluster.transient_power_delta() > 0.0
    engine.run_until(300.0)
    assert cluster.transient_rt_delta("a") == 0.0
    assert cluster.transient_power_delta() == 0.0


def test_sequential_plan_and_history():
    engine, cluster = make_cluster()
    handle = cluster.execute_plan(
        [
            IncreaseCpu("a-web-0", 0.1),
            MigrateVm("a-db-0", "h1"),
        ]
    )
    engine.run_until(500.0)
    assert handle.completed
    assert len(handle.records) == 2
    assert handle.records[0].end <= handle.records[1].start
    assert cluster.configuration.placement_of("a-web-0").cpu_cap == pytest.approx(0.5)


def test_power_off_drops_steady_draw_at_start():
    engine, cluster = make_cluster()
    # Empty h2 first.
    cluster.execute_plan([MigrateVm("a-db-0", "h1")])
    engine.run_until(300.0)
    cluster.execute_plan([PowerOffHost("h2")])
    engine.run_until(301.0)
    # Config change applied at start: h2 no longer powered.
    assert "h2" not in cluster.configuration.powered_hosts
    assert cluster.hosts["h2"].state is PowerState.SHUTTING_DOWN
    assert cluster.transient_power_delta() > 0.0  # shutdown surge
    engine.run_until(400.0)
    assert cluster.hosts["h2"].state is PowerState.OFF


def test_power_on_applies_at_completion():
    engine, cluster = make_cluster()
    cluster.execute_plan([PowerOnHost("h3")])
    engine.run_until(10.0)
    assert "h3" not in cluster.configuration.powered_hosts
    assert cluster.hosts["h3"].state is PowerState.BOOTING
    engine.run_until(200.0)
    assert "h3" in cluster.configuration.powered_hosts
    assert cluster.hosts["h3"].state is PowerState.ON


def test_busy_cluster_rejects_second_plan():
    engine, cluster = make_cluster()
    cluster.execute_plan([MigrateVm("a-db-0", "h1")])
    engine.run_until(1.0)
    with pytest.raises(ClusterBusyError):
        cluster.execute_plan([IncreaseCpu("a-web-0", 0.1)])


def test_add_replica_activates_vm():
    engine, cluster = make_cluster()
    cluster.execute_plan([AddReplica("a", "db", "h2", 0.2)])
    engine.run_until(300.0)
    assert cluster.configuration.is_placed("a-db-1")
    assert cluster.vms["a-db-1"].state is VmState.ACTIVE


def test_start_delay_defers_first_action():
    engine, cluster = make_cluster()
    cluster.execute_plan([IncreaseCpu("a-web-0", 0.1)], start_delay=50.0)
    engine.run_until(49.0)
    assert cluster.configuration.placement_of("a-web-0").cpu_cap == pytest.approx(0.4)
    engine.run_until(60.0)
    assert cluster.configuration.placement_of("a-web-0").cpu_cap == pytest.approx(0.5)


def test_empty_plan_completes_immediately():
    _, cluster = make_cluster()
    done = []
    handle = cluster.execute_plan([], on_complete=done.append)
    assert handle.completed
    assert done == [handle]


def test_aborted_plan_reports_reason():
    engine, cluster = make_cluster()
    handle = cluster.execute_plan(
        [MigrateVm("a-db-1", "h1")]  # dormant VM: structurally impossible
    )
    engine.run_until(1.0)
    assert handle.aborted is not None
    assert not cluster.is_adapting()


# -- power meter -------------------------------------------------------------------


def test_meter_reads_steady_plus_transients():
    engine, cluster = make_cluster()
    meter = PowerMeter(cluster, noise_watts=0.0)
    baseline = meter.read({"h1": 0.5, "h2": 0.5})
    cluster.execute_plan([MigrateVm("a-db-0", "h1")])
    engine.run_until(1.0)
    during = meter.read({"h1": 0.5, "h2": 0.5})
    assert during > baseline


def test_meter_includes_infrastructure_and_noise():
    _, cluster = make_cluster()
    silent = PowerMeter(cluster, infrastructure_watts=50.0, noise_watts=0.0)
    noisy = PowerMeter(
        cluster,
        infrastructure_watts=50.0,
        noise_watts=2.0,
        rng=np.random.default_rng(0),
    )
    base = silent.read({})
    assert base >= 50.0
    readings = {noisy.read({}) for _ in range(5)}
    assert len(readings) > 1


def test_meter_validation():
    _, cluster = make_cluster()
    with pytest.raises(ValueError):
        PowerMeter(cluster, infrastructure_watts=-1.0)
    with pytest.raises(ValueError):
        PowerMeter(cluster, noise_watts=-1.0)
