"""The public API surface stays importable and documented."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.sim",
    "repro.cluster",
    "repro.apps",
    "repro.perfmodel",
    "repro.power",
    "repro.workload",
    "repro.costmodel",
    "repro.core",
    "repro.baselines",
    "repro.testbed",
    "repro.experiments",
    "repro.telemetry",
]


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", PACKAGES)
def test_subpackages_import_and_have_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a docstring"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert getattr(repro, name) is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_symbol


def test_core_lazy_exports_resolve():
    import repro.core as core

    for name in core.__all__:
        assert getattr(core, name) is not None
    with pytest.raises(AttributeError):
        core.not_a_symbol


def test_public_classes_have_docstrings():
    from repro.core.controller import MistralController
    from repro.core.perf_pwr import PerfPwrOptimizer
    from repro.core.search import AdaptationSearch
    from repro.testbed.testbed import Testbed

    for cls in (MistralController, PerfPwrOptimizer, AdaptationSearch, Testbed):
        assert cls.__doc__
        for attr_name in dir(cls):
            attribute = getattr(cls, attr_name)
            if callable(attribute) and not attr_name.startswith("_"):
                assert attribute.__doc__, f"{cls.__name__}.{attr_name}"
