"""Tests for the Perf-Pwr optimizer."""

import pytest

from repro.core.perf_pwr import CapacityPlan, PerfPwrOptimizer


# -- CapacityPlan ----------------------------------------------------------------


def test_capacity_plan_operations():
    plan = CapacityPlan({"a": 0.4, "b": 0.3})
    assert plan.total_cap() == pytest.approx(0.7)
    reduced = plan.reduce_cap("a", 0.1)
    assert reduced.caps["a"] == pytest.approx(0.3)
    dropped = plan.drop_vm("b")
    assert "b" not in dropped.caps
    # original untouched
    assert plan.caps == {"a": 0.4, "b": 0.3}


# -- optimize ----------------------------------------------------------------------


def test_optimal_config_is_feasible(optimizer, catalog, limits):
    result = optimizer.optimize({"RUBiS-1": 50.0, "RUBiS-2": 50.0})
    assert result.configuration.is_candidate(catalog, limits)


def test_low_load_consolidates_to_fewer_hosts(optimizer):
    low = optimizer.optimize({"RUBiS-1": 10.0, "RUBiS-2": 10.0})
    high = optimizer.optimize({"RUBiS-1": 95.0, "RUBiS-2": 90.0})
    assert low.hosts_used <= 2
    assert high.hosts_used >= 3
    assert len(low.configuration.powered_hosts) <= len(
        high.configuration.powered_hosts
    )


def test_high_load_meets_planning_target(optimizer, estimator):
    workloads = {"RUBiS-1": 90.0, "RUBiS-2": 85.0}
    result = optimizer.optimize(workloads)
    utility = estimator.utility
    for app, rate in workloads.items():
        assert result.estimate.response_times[app] <= utility.target_response_time(
            app, rate
        )


def test_ideal_rate_combines_perf_and_power(optimizer):
    result = optimizer.optimize({"RUBiS-1": 40.0, "RUBiS-2": 40.0})
    assert result.ideal_rate == pytest.approx(
        result.perf_rate + result.power_rate
    )
    assert result.power_rate < 0


def test_alternatives_cover_host_counts(optimizer):
    result = optimizer.optimize({"RUBiS-1": 60.0, "RUBiS-2": 55.0})
    assert result in result.alternatives or any(
        alt.configuration == result.configuration
        for alt in result.alternatives
    )
    assert len(result.alternatives) >= 2
    assert all(
        alt.ideal_rate <= result.ideal_rate + 1e-12
        for alt in result.alternatives
    )


def test_optimize_is_memoized(optimizer):
    first = optimizer.optimize({"RUBiS-1": 42.0, "RUBiS-2": 17.0})
    second = optimizer.optimize({"RUBiS-1": 42.0, "RUBiS-2": 17.0})
    assert second is first


def test_every_tier_keeps_minimum_replicas(optimizer, catalog, apps):
    result = optimizer.optimize({"RUBiS-1": 30.0, "RUBiS-2": 70.0})
    for app in apps:
        for tier in app.tiers:
            placed = result.configuration.replica_count(
                catalog, app.name, tier.name
            )
            assert placed >= tier.min_replicas


# -- minimal capacities ---------------------------------------------------------------


def test_minimal_capacities_meet_targets(optimizer, estimator, catalog):
    from repro.core.config import Configuration, Placement

    workloads = {"RUBiS-1": 70.0, "RUBiS-2": 65.0}
    plan = optimizer.minimal_capacities(workloads)
    # Evaluate the plan on pseudo hosts: caps determine response times.
    config = Configuration(
        {vm: Placement(f"p-{vm}", cap) for vm, cap in plan.caps.items()},
        {f"p-{vm}" for vm in plan.caps},
    )
    performance = estimator.solver.solve(config, workloads)
    utility = estimator.utility
    for app, rate in workloads.items():
        assert performance.response_times[app] <= utility.target_response_time(
            app, rate
        )


def test_minimal_capacities_smaller_at_lower_load(optimizer):
    low = optimizer.minimal_capacities({"RUBiS-1": 20.0, "RUBiS-2": 20.0})
    high = optimizer.minimal_capacities({"RUBiS-1": 90.0, "RUBiS-2": 90.0})
    assert low.total_cap() < high.total_cap()


def test_minimal_capacities_memoized(optimizer):
    a = optimizer.minimal_capacities({"RUBiS-1": 33.0, "RUBiS-2": 44.0})
    b = optimizer.minimal_capacities({"RUBiS-1": 33.0, "RUBiS-2": 44.0})
    assert b is a


# -- packing ------------------------------------------------------------------------


def test_pack_respects_limits(optimizer, catalog, limits):
    plan = CapacityPlan(
        {descriptor.vm_id: 0.2 for descriptor in catalog}
    )
    packed = optimizer._pack(plan, optimizer.host_ids)
    assert packed is not None
    assert packed.is_candidate(catalog, limits)


def test_pack_fails_when_capacity_insufficient(optimizer, catalog):
    plan = CapacityPlan(
        {descriptor.vm_id: 0.8 for descriptor in catalog}
    )
    # 10 VMs x 0.8 = 8.0 total demand > 4 hosts x 0.8 = 3.2.
    assert optimizer._pack(plan, optimizer.host_ids) is None


def test_pack_prefers_fewest_hosts_needed(optimizer, catalog):
    plan = CapacityPlan({"RUBiS-1-web-0": 0.2, "RUBiS-1-db-0": 0.2})
    packed = optimizer._pack(plan, optimizer.host_ids)
    assert packed is not None
    assert len(packed.powered_hosts) == 1


def test_min_hosts_threshold(optimizer):
    # 6 minimum VMs at 0.2 cap => at least 2 hosts (cpu bound 1.5 -> 2).
    assert optimizer._min_hosts() == 2


def test_empty_host_list_rejected(apps, catalog, limits, estimator):
    with pytest.raises(ValueError):
        PerfPwrOptimizer(apps, catalog, limits, estimator, [])
