"""Checkpointing, watchdog deadlines, and hierarchy failover.

The headline contract: a run that checkpoints, dies, restores into a
freshly built controller, and continues produces a decision trace
bit-identical to an uninterrupted fixed-seed run (on the noise-free
replay loop — see ``repro.checkpoint.replay``).
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    SNAPSHOT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointStore,
    capture,
    drive_windows,
    reconcile,
    restore,
    snapshot_configuration,
)
from repro.core.config import Configuration, Placement
from repro.core.search import AdaptationSearch, SearchSettings
from repro.faults import ControllerCrash, FaultConfig

HOSTS = ("host-0", "host-1", "host-2", "host-3")

#: SearchOutcome fields under the bit-identity contract (everything but
#: the measured ``wall_seconds`` / ``pool_*`` — same list as
#: tests/test_parallel.py).
OUTCOME_FIELDS = (
    "actions",
    "final_configuration",
    "predicted_utility",
    "expansions",
    "decision_seconds",
    "pruning_activated",
    "optimal",
)


def _build(testbed, **kwargs):
    from repro.testbed import build_mistral

    return build_mistral(testbed, **kwargs)


# ---------------------------------------------------------------------------
# store: atomicity, checksum, version gate
# ---------------------------------------------------------------------------


def test_store_round_trip(tmp_path):
    store = CheckpointStore(tmp_path / "snap.json")
    assert not store.exists()
    snapshot = {"schema": 1, "kind": "x", "t_sim": 42.0, "nested": [1, 2]}
    store.save(snapshot)
    assert store.exists()
    assert store.load() == snapshot


def test_store_missing_file_raises(tmp_path):
    store = CheckpointStore(tmp_path / "absent.json")
    with pytest.raises(CheckpointError, match="cannot read"):
        store.load()


def test_store_rejects_corrupt_json(tmp_path):
    path = tmp_path / "snap.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(CheckpointError, match="not valid JSON"):
        CheckpointStore(path).load()


def test_store_rejects_truncated_file(tmp_path):
    path = tmp_path / "snap.json"
    store = CheckpointStore(path)
    store.save({"schema": 1, "payload": list(range(100))})
    raw = path.read_text(encoding="utf-8")
    path.write_text(raw[: len(raw) // 2], encoding="utf-8")
    with pytest.raises(CheckpointError):
        store.load()


def test_store_rejects_checksum_mismatch(tmp_path):
    path = tmp_path / "snap.json"
    store = CheckpointStore(path)
    store.save({"schema": 1, "value": 1})
    envelope = json.loads(path.read_text(encoding="utf-8"))
    envelope["snapshot"]["value"] = 2  # tamper without refreshing checksum
    path.write_text(json.dumps(envelope), encoding="utf-8")
    with pytest.raises(CheckpointError, match="checksum"):
        store.load()


def test_store_rejects_unknown_envelope_version(tmp_path):
    path = tmp_path / "snap.json"
    path.write_text(
        json.dumps({"v": 99, "checksum": "0" * 64, "snapshot": {}}),
        encoding="utf-8",
    )
    with pytest.raises(CheckpointError, match="unknown schema version"):
        CheckpointStore(path).load()


def test_failed_save_keeps_previous_snapshot_and_no_tmp_files(tmp_path):
    path = tmp_path / "snap.json"
    store = CheckpointStore(path)
    store.save({"schema": 1, "good": True})
    with pytest.raises(TypeError):
        store.save({"schema": 1, "bad": object()})  # not JSON-encodable
    assert store.load() == {"schema": 1, "good": True}
    leftovers = [name for name in os.listdir(tmp_path) if ".tmp" in name]
    assert leftovers == []


def test_save_overwrites_atomically(tmp_path):
    store = CheckpointStore(tmp_path / "snap.json")
    store.save({"schema": 1, "generation": 1})
    store.save({"schema": 1, "generation": 2})
    assert store.load()["generation"] == 2


# ---------------------------------------------------------------------------
# store: generation ring, quarantine, rollback
# ---------------------------------------------------------------------------


def test_store_keep_validated(tmp_path):
    with pytest.raises(ValueError, match="keep"):
        CheckpointStore(tmp_path / "snap.json", keep=0)
    assert CheckpointStore(tmp_path / "snap.json", keep=2).keep == 2


def test_ring_retains_bounded_generations(tmp_path):
    path = tmp_path / "snap.json"
    store = CheckpointStore(path, keep=3)
    for generation in range(1, 6):
        store.save({"schema": 1, "generation": generation})
    rings = store.generations()
    assert [os.path.basename(p) for p in rings] == [
        "snap.json.g000003",
        "snap.json.g000004",
        "snap.json.g000005",
    ]
    # The head is a hard link to the newest generation — same bytes.
    assert store.load()["generation"] == 5
    assert os.path.samefile(path, rings[-1])
    # Pruned generations are really gone.
    assert not os.path.exists(str(path) + ".g000001")
    assert not os.path.exists(str(path) + ".g000002")


def test_failed_save_never_touches_previous_generation(tmp_path):
    """Verify-before-commit: the previous good generation survives a
    failing save byte for byte (it is never deleted or replaced until
    its successor is durably on disk and proven readable)."""
    path = tmp_path / "snap.json"
    store = CheckpointStore(path, keep=2)
    store.save({"schema": 1, "good": True})
    (generation_path,) = store.generations()
    before = open(generation_path, encoding="utf-8").read()
    with pytest.raises(TypeError):
        store.save({"schema": 1, "bad": object()})
    assert store.generations() == [generation_path]
    assert open(generation_path, encoding="utf-8").read() == before
    assert store.load() == {"schema": 1, "good": True}


def test_corruption_hook_rot_is_quarantined_and_rolled_back(tmp_path):
    """Post-write rot on the newest snapshot: ``load`` quarantines the
    corrupt files (head and its hard-linked generation), rolls back to
    the previous generation, and repairs the head link."""
    path = tmp_path / "snap.json"
    store = CheckpointStore(path, keep=3)
    store.save({"schema": 1, "generation": 1})
    store.corruption_hook = lambda text: "X" + text[1:]
    store.save({"schema": 1, "generation": 2})

    assert store.load() == {"schema": 1, "generation": 1}
    quarantined = [os.path.basename(p) for p in store.quarantined()]
    assert "snap.json.g000002.quarantine" in quarantined
    # The head link was repaired to the recovered generation, so the
    # next load is a straight read — no rollback pass.
    assert os.path.samefile(path, str(path) + ".g000001")
    assert store.load() == {"schema": 1, "generation": 1}

    # Quarantined numbers are never reused: the lineage continues past
    # the rotted generation, and the evidence stays on disk.
    store.corruption_hook = None
    store.save({"schema": 1, "generation": 3})
    assert os.path.basename(store.generations()[-1]) == "snap.json.g000003"
    assert store.load() == {"schema": 1, "generation": 3}
    assert "snap.json.g000002.quarantine" in [
        os.path.basename(p) for p in store.quarantined()
    ]


def test_load_recovers_when_head_is_deleted(tmp_path):
    path = tmp_path / "snap.json"
    store = CheckpointStore(path)
    store.save({"schema": 1, "value": 7})
    os.unlink(path)
    assert store.load() == {"schema": 1, "value": 7}
    # Recovery re-links the head for the next reader.
    assert os.path.exists(path)


def test_load_refuses_when_every_generation_is_rotten(tmp_path):
    path = tmp_path / "snap.json"
    store = CheckpointStore(path, keep=2)
    store.corruption_hook = lambda text: "X" + text[1:]
    store.save({"schema": 1, "generation": 1})
    store.save({"schema": 1, "generation": 2})
    with pytest.raises(CheckpointError, match="not valid JSON"):
        store.load()
    assert store.generations() == []
    assert len(store.quarantined()) >= 2


def test_ring_telemetry_counts_saves_quarantines_rollbacks(tmp_path):
    from repro import telemetry

    path = tmp_path / "snap.json"
    store = CheckpointStore(path, keep=3)
    telemetry.enable()
    try:
        store.save({"schema": 1, "generation": 1})
        store.corruption_hook = lambda text: "X" + text[1:]
        store.save({"schema": 1, "generation": 2})
        assert store.load() == {"schema": 1, "generation": 1}
        counters = telemetry.runtime.registry.snapshot()["counters"]
    finally:
        telemetry.disable()
    assert counters.get("checkpoint.saves") == 2
    assert counters.get("checkpoint.quarantines", 0) >= 1
    assert counters.get("checkpoint.rollbacks") == 1


# ---------------------------------------------------------------------------
# snapshot validation: all-or-nothing restore
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def driven_snapshot(small_testbed):
    """A hierarchy snapshot with real accumulated state (4 windows)."""
    controller, initial = _build(small_testbed)
    _, configuration = drive_windows(controller, initial, small_testbed, 0, 4)
    interval = small_testbed.settings.monitoring_interval
    return capture(
        controller, configuration=configuration, t_sim=4 * interval
    )


def test_snapshot_is_json_round_trippable(driven_snapshot):
    encoded = json.dumps(driven_snapshot)
    assert json.loads(encoded) == driven_snapshot
    assert driven_snapshot["schema"] == SNAPSHOT_SCHEMA_VERSION
    assert driven_snapshot["kind"] == "hierarchy"


def test_restore_rejects_unknown_schema_without_partial_restore(
    small_testbed, driven_snapshot
):
    controller, _ = _build(small_testbed)
    pristine = capture(controller)
    bad = dict(driven_snapshot)
    bad["schema"] = 99
    with pytest.raises(CheckpointError, match="unknown snapshot schema"):
        restore(controller, bad)
    assert capture(controller) == pristine


def test_restore_rejects_kind_mismatch(small_testbed, driven_snapshot):
    single, _ = _build(small_testbed, hierarchical=False)
    with pytest.raises(CheckpointError, match="kind"):
        restore(single, driven_snapshot)


def test_restore_rejects_cost_table_mismatch_without_partial_restore(
    small_testbed, driven_snapshot
):
    controller, _ = _build(small_testbed)
    pristine = capture(controller)
    bad = dict(driven_snapshot)
    bad["cost_table_fingerprint"] = "deadbeef"
    with pytest.raises(CheckpointError, match="fingerprint"):
        restore(controller, bad)
    assert capture(controller) == pristine


def test_restore_rejects_hierarchy_shape_mismatch(
    small_testbed, driven_snapshot
):
    controller, _ = _build(small_testbed)
    pristine = capture(controller)
    bad = dict(driven_snapshot)
    bad["level1"] = bad["level1"][:-1]
    with pytest.raises(CheckpointError, match="1st-level"):
        restore(controller, bad)
    assert capture(controller) == pristine


def test_capture_restore_round_trip_after_real_windows(
    small_testbed, driven_snapshot
):
    controller, _ = _build(small_testbed)
    restore(controller, driven_snapshot)
    recaptured = capture(
        controller,
        configuration=snapshot_configuration(driven_snapshot),
        t_sim=driven_snapshot["t_sim"],
    )
    assert recaptured == driven_snapshot


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rates=st.lists(
        st.floats(min_value=1.0, max_value=120.0, allow_nan=False),
        min_size=0,
        max_size=10,
    )
)
def test_snapshot_round_trip_property(small_testbed, rates):
    """Any observe-only sample sequence survives capture -> restore."""
    names = small_testbed.applications.names()
    interval = small_testbed.settings.monitoring_interval
    controller, configuration = _build(small_testbed, hierarchical=False)
    for index, rate in enumerate(rates):
        workloads = {name: rate + offset for offset, name in enumerate(names)}
        controller.record_interval_utility(rate)
        # busy=True: the controller observes (bands, ARMA filter,
        # utility window all advance) but never searches.
        controller.on_sample(index * interval, workloads, configuration, True)
    snapshot = capture(controller, configuration=configuration)

    fresh, _ = _build(small_testbed, hierarchical=False)
    restore(fresh, snapshot)
    assert capture(fresh, configuration=configuration) == snapshot


# ---------------------------------------------------------------------------
# reconciliation
# ---------------------------------------------------------------------------


def test_reconcile_clean_and_drifted():
    configuration = Configuration(
        {"vm-a": Placement("host-0", 0.5), "vm-b": Placement("host-1", 0.5)},
        {"host-0", "host-1"},
    )
    snapshot = {"configuration": None}
    assert reconcile(snapshot, configuration).clean

    snapshot = capture_configuration_stub(configuration)
    assert reconcile(snapshot, configuration).clean

    drifted = Configuration(
        {"vm-a": Placement("host-2", 0.5), "vm-c": Placement("host-1", 0.7)},
        {"host-1", "host-2"},
    )
    report = reconcile(snapshot, drifted)
    assert not report.clean
    assert report.vms_moved == ("vm-a",)
    assert report.vms_added == ("vm-c",)
    assert report.vms_removed == ("vm-b",)
    assert report.hosts_powered_on == ("host-2",)
    assert report.hosts_powered_off == ("host-0",)
    assert report.drift_count() == 5


def capture_configuration_stub(configuration) -> dict:
    return {
        "configuration": {
            "placements": {
                vm_id: [placement.host_id, placement.cpu_cap]
                for vm_id, placement in configuration.placement_items()
            },
            "powered": sorted(configuration.powered_hosts),
        }
    }


def test_reconcile_detects_cap_changes():
    before = Configuration({"vm-a": Placement("host-0", 0.5)}, {"host-0"})
    after = Configuration({"vm-a": Placement("host-0", 0.8)}, {"host-0"})
    report = reconcile(capture_configuration_stub(before), after)
    assert report.caps_changed == ("vm-a",)
    assert report.drift_count() == 1


# ---------------------------------------------------------------------------
# the headline: crash-restart determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("hierarchical", "windows", "crash_at"),
    [
        # The single controller's first non-null decision lands late
        # (window 15 on this scenario) — crash well before it so the
        # restored ARMA/band state must reproduce it exactly.
        (False, 16, 8),
        (True, 12, 3),
    ],
)
def test_crash_restart_decision_trace_is_bit_identical(
    small_testbed, tmp_path, hierarchical, windows, crash_at
):
    interval = small_testbed.settings.monitoring_interval

    controller, initial = _build(small_testbed, hierarchical=hierarchical)
    reference, _ = drive_windows(
        controller, initial, small_testbed, 0, windows
    )

    controller, initial = _build(small_testbed, hierarchical=hierarchical)
    head, configuration = drive_windows(
        controller, initial, small_testbed, 0, crash_at
    )
    store = CheckpointStore(tmp_path / "snap.json")
    store.save(
        capture(
            controller,
            configuration=configuration,
            t_sim=crash_at * interval,
        )
    )
    del controller  # the crash

    revived, _ = _build(small_testbed, hierarchical=hierarchical)
    snapshot = store.load()
    restore(revived, snapshot)
    resumed_configuration = snapshot_configuration(snapshot)
    assert reconcile(snapshot, resumed_configuration).clean
    tail, _ = drive_windows(
        revived, resumed_configuration, small_testbed, crash_at, windows
    )

    assert head + tail == reference
    assert reference, "the scenario must actually decide something"


# ---------------------------------------------------------------------------
# search watchdog
# ---------------------------------------------------------------------------


@pytest.fixture
def make_search(apps, catalog, limits, estimator, cost_manager, optimizer):
    def factory(search_settings=None):
        return AdaptationSearch(
            apps,
            catalog,
            limits,
            estimator,
            cost_manager,
            optimizer,
            HOSTS,
            settings=search_settings or SearchSettings(),
        )

    return factory


def saturated_config():
    return Configuration(
        {
            "RUBiS-1-web-0": Placement("host-0", 0.2),
            "RUBiS-1-app-0": Placement("host-0", 0.2),
            "RUBiS-1-db-0": Placement("host-1", 0.4),
            "RUBiS-2-web-0": Placement("host-0", 0.2),
            "RUBiS-2-app-0": Placement("host-0", 0.2),
            "RUBiS-2-db-0": Placement("host-1", 0.4),
        },
        {"host-0", "host-1"},
    )


def test_deadline_validation():
    with pytest.raises(ValueError, match="deadline_seconds"):
        SearchSettings(deadline_seconds=0.0)
    with pytest.raises(ValueError, match="deadline_seconds"):
        SearchSettings(deadline_seconds=-1.0)
    assert SearchSettings(deadline_seconds=None).deadline_seconds is None


def test_tiny_deadline_aborts_to_valid_plan(make_search, catalog, limits):
    search = make_search(SearchSettings(deadline_seconds=1e-6))
    workloads = {"RUBiS-1": 60.0, "RUBiS-2": 55.0}
    outcome = search.search(saturated_config(), workloads, 600.0)
    assert outcome.deadline_aborted
    assert not outcome.optimal
    # Aborting still returns a valid, executable plan (possibly null).
    assert outcome.final_configuration.is_candidate(catalog, limits)
    state = saturated_config()
    for action in outcome.actions:
        state = action.apply(state, catalog, limits)
    assert state == outcome.final_configuration
    # The overshoot is bounded by one expansion round; on this testbed
    # a round is far below a second, so seconds of slack is generous.
    assert outcome.wall_seconds <= 1e-6 + 5.0


def test_generous_deadline_is_bit_identical_to_no_deadline(make_search):
    workloads = {"RUBiS-1": 60.0, "RUBiS-2": 55.0}
    bounded = make_search(SearchSettings(deadline_seconds=3600.0)).search(
        saturated_config(), workloads, 600.0
    )
    unbounded = make_search(SearchSettings()).search(
        saturated_config(), workloads, 600.0
    )
    assert not bounded.deadline_aborted
    for field in OUTCOME_FIELDS:
        assert getattr(bounded, field) == getattr(unbounded, field), field


def test_controller_counts_watchdog_aborts(small_testbed):
    controller, _ = _build(
        small_testbed,
        hierarchical=False,
        search_settings=SearchSettings(deadline_seconds=1e-6),
    )
    # An unseen sample escapes the band, and the underprovisioned
    # configuration forces a real (non-early-return) search, which the
    # 1µs deadline aborts immediately.
    decision = controller.on_sample(
        0.0, {"RUBiS-1": 60.0, "RUBiS-2": 55.0}, saturated_config()
    )
    assert controller.stats.watchdog_aborts == 1
    assert controller.stats.decisions == 1
    if decision is not None:
        assert decision.outcome.deadline_aborted


# ---------------------------------------------------------------------------
# hierarchy failover (testbed integration)
# ---------------------------------------------------------------------------


def test_controller_crash_failover_run(small_testbed, tmp_path):
    controller, initial = _build(small_testbed)
    path = tmp_path / "snap.json"
    faults = FaultConfig(
        controller_crashes=(
            ControllerCrash(time=600.0, restart_delay=300.0),
        ),
    )
    metrics = small_testbed.run(
        controller,
        initial,
        "mistral",
        horizon=1800.0,
        checkpoint=path,
        faults=faults,
    )
    assert metrics.fault_stats.controller_crashes == 1
    assert controller._level2_down_until is None  # restarted in-run
    # The run keeps checkpointing after the failover; the final
    # snapshot must load and restore into a fresh hierarchy.
    snapshot = CheckpointStore(path).load()
    fresh, _ = _build(small_testbed)
    # A faulted run attaches the degradation ladder; the restore
    # target must be built the same way (restore refuses otherwise).
    fresh.enable_resilience()
    restore(fresh, snapshot)
    assert snapshot["t_sim"] > 600.0


def test_controller_crash_requires_failover_capable_controller(
    small_testbed,
):
    controller, initial = _build(small_testbed, hierarchical=False)
    faults = FaultConfig(
        controller_crashes=(ControllerCrash(time=600.0),),
    )
    with pytest.raises(ValueError, match="failover-capable"):
        small_testbed.run(
            controller, initial, "mistral", horizon=1800.0, faults=faults
        )


def test_crash_controller_rejects_unknown_victim(small_testbed):
    controller, _ = _build(small_testbed)
    with pytest.raises(ValueError, match="unknown crash target"):
        controller.crash_controller(
            0.0, ControllerCrash(time=0.0, controller="mistral-L1-0")
        )


def test_level1_keeps_planning_while_level2_is_down(small_testbed):
    """During the outage the 1st level still observes and may decide."""
    controller, initial = _build(small_testbed)
    interval = small_testbed.settings.monitoring_interval
    controller.crash_controller(
        0.0, ControllerCrash(time=0.0, restart_delay=10 * interval)
    )
    invocations_before = controller.level2.stats.invocations
    decisions = controller.on_sample(
        interval, {"RUBiS-1": 60.0, "RUBiS-2": 55.0}, initial
    )
    assert controller.level2.stats.invocations == invocations_before
    assert all(
        decision.controller != controller.level2.name
        for decision in decisions
    )


def test_checkpointing_does_not_perturb_the_run(small_testbed, tmp_path):
    """checkpoint= only persists state; decisions are bit-identical."""
    horizon = 1800.0
    controller, initial = _build(small_testbed)
    plain = small_testbed.run(
        controller, initial, "mistral", horizon=horizon
    )
    controller, initial = _build(small_testbed)
    checkpointed = small_testbed.run(
        controller,
        initial,
        "mistral",
        horizon=horizon,
        checkpoint=tmp_path / "snap.json",
    )
    assert (
        plain.utility_increments.values
        == checkpointed.utility_increments.values
    )
    assert plain.power_watts.values == checkpointed.power_watts.values
    assert [
        (record.start, record.end, record.description)
        for record in plain.actions
    ] == [
        (record.start, record.end, record.description)
        for record in checkpointed.actions
    ]


# ---------------------------------------------------------------------------
# teardown hardening
# ---------------------------------------------------------------------------


def test_interrupted_run_flushes_trace_closes_pool_and_leaves_snapshot(
    small_testbed, tmp_path
):
    from repro.telemetry import runtime as telemetry

    controller, initial = _build(small_testbed, parallel_workers=2)
    path = tmp_path / "snap.json"
    trace_path = tmp_path / "trace.jsonl"

    original = controller.on_sample
    state = {"calls": 0}

    def interrupting(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] == 3:
            raise KeyboardInterrupt
        return original(*args, **kwargs)

    controller.on_sample = interrupting
    telemetry.enable(jsonl_path=str(trace_path))
    try:
        with pytest.raises(KeyboardInterrupt):
            small_testbed.run(
                controller,
                initial,
                "mistral",
                horizon=7200.0,
                checkpoint=path,
            )
        # Teardown ran despite the interrupt: the L1 pool is released,
        # the trace is flushed to disk, and the snapshot on disk loads.
        assert controller._level1_pool is None
        flushed = trace_path.read_text(encoding="utf-8")
        assert "checkpoint.save" in flushed
    finally:
        telemetry.disable()
    snapshot = CheckpointStore(path).load()
    fresh, _ = _build(small_testbed, parallel_workers=2)
    restore(fresh, snapshot)
