"""Chaos hardening: invariant checker + injected infrastructure faults.

The contract under test (DESIGN.md §10): chaos mode injects faults into
the controller's own machinery — worker pools, the shared-memory
channel, the walkers' evaluation path — and the hardening layers must
absorb them without changing *what* is decided.  Every test here pins a
fault probability to 1.0 (deterministic injection) and asserts the
decision is bit-identical to the fault-free path, plus the referee
(:func:`check_invariants`) that the soak runner applies after every
committed decision.
"""

from __future__ import annotations

import pytest

from repro.core.config import Configuration, Placement
from repro.core.estimator import UtilityEstimator
from repro.core.perf_pwr import PerfPwrOptimizer
from repro.core.search import AdaptationSearch, SearchSettings
from repro.faults import (
    FaultConfig,
    FaultInjector,
    InvariantViolation,
    check_invariants,
)
from repro.testbed.scenarios import initial_configuration

HOST_IDS = ("host-0", "host-1", "host-2", "host-3")

#: Everything a search outcome decides; ``wall_seconds`` and the
#: ``pool_*`` tallies are measured time, excluded by the contract.
OUTCOME_FIELDS = (
    "actions",
    "final_configuration",
    "predicted_utility",
    "expansions",
    "decision_seconds",
    "pruning_activated",
    "optimal",
)


def _make_search(testbed, **settings_kwargs) -> AdaptationSearch:
    settings = SearchSettings(
        self_aware=True, incremental=True, **settings_kwargs
    )
    # A private estimator/optimizer pair: the session testbed's memo
    # caches are shared, and warming them with this module's workloads
    # would hide cache misses other test modules assert on.
    estimator = UtilityEstimator(
        testbed.model_solver,
        testbed.model_power,
        testbed.planning_utility,
        testbed.catalog,
    )
    optimizer = PerfPwrOptimizer(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        estimator,
        testbed.host_ids,
    )
    return AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        estimator,
        testbed.cost_manager,
        optimizer,
        testbed.host_ids,
        settings=settings,
    )


def _high_workloads(testbed) -> dict[str, float]:
    return {
        name: 45.0 + 5.0 * index
        for index, name in enumerate(testbed.applications.names())
    }


def _run(search, testbed):
    start = initial_configuration(testbed)
    workloads = _high_workloads(testbed)
    try:
        return search.search(start, workloads, 300.0)
    finally:
        search.close_executor()


def _assert_outcomes_identical(reference, candidate) -> None:
    for field in OUTCOME_FIELDS:
        assert getattr(candidate, field) == getattr(reference, field), field


# ---------------------------------------------------------------------------
# the invariant referee
# ---------------------------------------------------------------------------


@pytest.fixture
def clean_configuration(base_configuration):
    return base_configuration


def test_clean_decision_has_no_violations(
    clean_configuration, catalog, limits
):
    assert (
        check_invariants(
            clean_configuration,
            catalog,
            limits,
            host_ids=HOST_IDS,
            utility={"steady": 10.0, "transient": -2.0, "total": 8.0},
        )
        == []
    )


def test_allocation_overcommit_is_flagged(
    clean_configuration, catalog, limits
):
    over = clean_configuration.replace(
        "RUBiS-1-web-0", Placement("host-0", 0.9)
    ).replace("RUBiS-2-web-0", Placement("host-0", 0.9))
    violations = check_invariants(over, catalog, limits)
    assert any(v.name == "allocation" for v in violations)
    assert any("host-0" in v.detail for v in violations)


def test_unpowered_placement_is_flagged(catalog, limits):
    """A corrupt decode path could resurrect a stale powered set via
    pickling (which bypasses ``__init__``) — the referee re-checks."""
    configuration = Configuration(
        {"RUBiS-1-web-0": Placement("host-0", 0.2)}, {"host-0"}
    )
    items, _ = configuration.__getstate__()
    resurrected = Configuration.__new__(Configuration)
    resurrected.__setstate__((items, frozenset({"host-1"})))
    violations = check_invariants(resurrected, catalog, limits)
    assert any(
        v.name == "allocation" and "unpowered" in v.detail
        for v in violations
    )


def test_missing_replica_zero_is_flagged(
    clean_configuration, catalog, limits
):
    broken = clean_configuration.remove("RUBiS-1-app-0").replace(
        "RUBiS-1-app-1", Placement("host-0", 0.2)
    )
    violations = check_invariants(broken, catalog, limits)
    assert [v.name for v in violations] == ["replica_zero"]
    assert "RUBiS-1-app-0" in violations[0].detail


@pytest.mark.parametrize(
    "utility",
    [
        {"steady": 1.0, "transient": 0.5, "total": 2.0},  # leaks utility
        {"steady": 1.0},  # missing Eq. 3 terms
        {"steady": "x", "transient": 0.0, "total": 0.0},  # unparsable
    ],
)
def test_eq3_conservation_violations(
    utility, clean_configuration, catalog, limits
):
    violations = check_invariants(
        clean_configuration, catalog, limits, utility=utility
    )
    assert [v.name for v in violations] == ["conservation"]


def test_eq3_conservation_tolerates_float_slack(
    clean_configuration, catalog, limits
):
    assert (
        check_invariants(
            clean_configuration,
            catalog,
            limits,
            utility={
                "steady": 1e6,
                "transient": 2.0,
                "total": 1e6 + 2.0 + 1e-3,  # within 1e-6 * scale
            },
        )
        == []
    )


def test_no_utility_breakdown_skips_conservation(
    clean_configuration, catalog, limits
):
    assert check_invariants(clean_configuration, catalog, limits) == []


def test_violations_are_counted_and_traced(
    clean_configuration, catalog, limits
):
    from repro import telemetry

    broken = clean_configuration.remove("RUBiS-1-app-0").replace(
        "RUBiS-1-app-1", Placement("host-0", 0.2)
    )
    telemetry.enable()
    try:
        violations = check_invariants(
            broken, catalog, limits, context="unit@t=0"
        )
        counters = telemetry.runtime.registry.snapshot()["counters"]
    finally:
        telemetry.disable()
    assert len(violations) == 1
    assert isinstance(violations[0], InvariantViolation)
    assert counters.get("chaos.invariant_violations") == 1


# ---------------------------------------------------------------------------
# injected infrastructure faults: decisions survive bit-identically
# ---------------------------------------------------------------------------


def test_worker_kill_respawns_and_decides_identically(small_testbed):
    """SIGKILLing pool workers mid-round is absorbed by the supervised
    respawn (then, budget exhausted, the pin-to-serial rung) — the
    decision never changes."""
    reference = _run(_make_search(small_testbed), small_testbed)

    search = _make_search(
        small_testbed,
        parallel_workers=2,
        parallel_executor="process",
        executor_respawn_backoff_seconds=0.0,
    )
    injector = FaultInjector(FaultConfig(seed=7, worker_kill_probability=1.0))
    search.fault_injector = injector
    hook_calls: list[str] = []
    search.on_executor_failure = hook_calls.append

    outcome = _run(search, small_testbed)
    _assert_outcomes_identical(reference, outcome)
    assert injector.stats.worker_kills >= 1
    assert "worker_respawn" in hook_calls


def test_shm_corruption_triggers_resync_and_decides_identically(
    small_testbed,
):
    """A flipped byte in the shared-memory snapshot surfaces as a
    checksum mismatch in every worker; the executor republishes the
    full image and retries the round — same decision, no fallback."""
    from repro import telemetry

    kwargs = dict(
        parallel_workers=2, parallel_executor="process", array_core=True
    )
    reference = _run(_make_search(small_testbed), small_testbed)

    search = _make_search(
        small_testbed, executor_respawn_backoff_seconds=0.0, **kwargs
    )
    injector = FaultInjector(
        FaultConfig(seed=7, shm_corruption_probability=1.0)
    )
    search.fault_injector = injector
    telemetry.enable()
    try:
        outcome = _run(search, small_testbed)
        counters = telemetry.runtime.registry.snapshot()["counters"]
    finally:
        telemetry.disable()
    _assert_outcomes_identical(reference, outcome)
    assert injector.stats.shm_corruptions >= 1
    assert counters.get("parallel.shm_resyncs", 0) >= 1
    assert not search._parallel_failed


@pytest.mark.parametrize("name", ("mcts", "annealing"))
def test_solver_fault_falls_back_to_exact_astar(name, small_testbed):
    """An injected LQN solver failure inside a walker's evaluation path
    must never cost the controller a decision: the dispatcher answers
    with the exact A* incumbent path (which shares none of the walker's
    machinery) and stamps what actually decided."""
    reference = _run(
        _make_search(small_testbed, strategy="astar"), small_testbed
    )

    search = _make_search(small_testbed, strategy=name)
    search.fault_injector = FaultInjector(
        FaultConfig(seed=7, solver_exception_probability=1.0)
    )
    hook_calls: list[str] = []
    search.on_executor_failure = hook_calls.append

    outcome = _run(search, small_testbed)
    assert outcome.strategy == "astar"
    assert hook_calls == ["strategy_failure"]
    assert search.fault_injector.stats.solver_exceptions >= 1
    for field in OUTCOME_FIELDS:
        assert getattr(outcome, field) == getattr(reference, field), field


# ---------------------------------------------------------------------------
# testbed integration: the referee rides along, the clean path is clean
# ---------------------------------------------------------------------------


def test_invariant_checked_run_is_clean_and_bit_identical(small_testbed):
    from repro.testbed import build_mistral

    horizon = 1800.0
    controller, initial = build_mistral(small_testbed)
    plain = small_testbed.run(controller, initial, "x", horizon=horizon)
    controller, initial = build_mistral(small_testbed)
    checked = small_testbed.run(
        controller, initial, "x", horizon=horizon, invariants=True
    )
    assert checked.invariant_violations == []
    assert plain.utility_increments.values == checked.utility_increments.values
    assert plain.power_watts.values == checked.power_watts.values
    assert [
        (record.start, record.end, record.description)
        for record in plain.actions
    ] == [
        (record.start, record.end, record.description)
        for record in checked.actions
    ]
