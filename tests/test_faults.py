"""Fault injector: config validation, determinism, and the off contract."""

import pytest

from repro.faults import (
    FaultConfig,
    FaultInjector,
    HostCrash,
    ScriptedActionFault,
)


class FakeAction:
    """Just enough action for the injector: a ``kind`` attribute."""

    def __init__(self, kind: str) -> None:
        self.kind = kind


# ---------------------------------------------------------------------------
# configuration validation
# ---------------------------------------------------------------------------


def test_default_config_is_inert():
    assert FaultConfig().is_inert()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"default_fail_probability": 0.1},
        {"default_stall_probability": 0.1},
        {"action_fail_probability": {"migrate": 0.5}},
        {"action_stall_probability": {"migrate": 0.5}},
        {"scripted": (ScriptedActionFault(kind="migrate", occurrence=0),)},
        {"host_crashes": (HostCrash(time=10.0, host_id="host-1"),)},
        {"sample_drop_probability": 0.1},
        {"sample_stale_probability": 0.1},
        {"worker_kill_probability": 0.1},
        {"shm_corruption_probability": 0.1},
        {"checkpoint_corruption_probability": 0.1},
        {"solver_exception_probability": 0.1},
        {"strategy_stall_probability": 0.1},
    ],
)
def test_any_fault_surface_defeats_inertness(kwargs):
    assert not FaultConfig(**kwargs).is_inert()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"default_fail_probability": 1.5},
        {"default_stall_probability": -0.1},
        {"action_fail_probability": {"migrate": 2.0}},
        {"sample_drop_probability": 0.6, "sample_stale_probability": 0.6},
        {"stall_factor": 0.5},
        {"fail_fraction": 0.0},
        {"fail_fraction": 1.5},
        {"worker_kill_probability": 1.1},
        {"shm_corruption_probability": -0.2},
        {"shm_corruption_mode": "scramble"},
        {"checkpoint_corruption_probability": 2.0},
        {"solver_exception_probability": -1.0},
        {"strategy_stall_probability": 1.5},
        {"strategy_stall_seconds": 0.0},
        {"strategy_stall_seconds": -1.0},
    ],
)
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(**kwargs)


def test_scripted_fault_validation():
    with pytest.raises(ValueError):
        ScriptedActionFault(kind="migrate", occurrence=-1)
    with pytest.raises(ValueError):
        ScriptedActionFault(kind="migrate", occurrence=0, mode="explode")
    with pytest.raises(ValueError):
        HostCrash(time=-1.0, host_id="host-0")


# ---------------------------------------------------------------------------
# action faults
# ---------------------------------------------------------------------------


def test_inert_injector_never_faults():
    injector = FaultInjector(FaultConfig())
    for _ in range(50):
        assert injector.action_fault(FakeAction("migrate")) is None
    assert injector.stats.total() == 0


def test_same_seed_same_verdicts():
    config = FaultConfig(
        seed=11, default_fail_probability=0.3, default_stall_probability=0.2
    )
    verdict_runs = []
    for _ in range(2):
        injector = FaultInjector(config)
        verdict_runs.append(
            [
                fault.mode if fault else None
                for fault in (
                    injector.action_fault(FakeAction("migrate"))
                    for _ in range(40)
                )
            ]
        )
    assert verdict_runs[0] == verdict_runs[1]
    assert "fail" in verdict_runs[0]
    assert "stall" in verdict_runs[0]


def test_zero_probability_family_consumes_no_draws():
    """Attempts of fault-free families must not shift other draws."""
    config = FaultConfig(seed=3, action_fail_probability={"migrate": 0.5})

    interleaved = FaultInjector(config)
    verdicts = []
    for _ in range(20):
        # increase_cpu has every knob at zero: no draw consumed.
        assert interleaved.action_fault(FakeAction("increase_cpu")) is None
        fault = interleaved.action_fault(FakeAction("migrate"))
        verdicts.append(fault.mode if fault else None)

    pure = FaultInjector(config)
    expected = []
    for _ in range(20):
        fault = pure.action_fault(FakeAction("migrate"))
        expected.append(fault.mode if fault else None)
    assert verdicts == expected


def test_scripted_occurrences_count_attempts_per_family():
    config = FaultConfig(
        scripted=(
            ScriptedActionFault(kind="migrate", occurrence=0),
            ScriptedActionFault(kind="migrate", occurrence=1, mode="stall"),
        ),
        stall_factor=6.0,
    )
    injector = FaultInjector(config)
    first = injector.action_fault(FakeAction("migrate"))
    assert first is not None and first.mode == "fail"
    # Other families do not advance the migrate occurrence index.
    assert injector.action_fault(FakeAction("add_replica")) is None
    second = injector.action_fault(FakeAction("migrate"))
    assert second is not None and second.mode == "stall"
    assert second.stall_factor == 6.0
    assert injector.action_fault(FakeAction("migrate")) is None
    assert injector.stats.action_failures == 1
    assert injector.stats.action_stalls == 1


# ---------------------------------------------------------------------------
# monitoring faults
# ---------------------------------------------------------------------------


def test_perturb_sample_drop():
    injector = FaultInjector(FaultConfig(sample_drop_probability=1.0))
    observed, fault = injector.perturb_sample({"a": 10.0})
    assert observed is None and fault == "dropped"
    assert injector.stats.samples_dropped == 1


def test_perturb_sample_stale_replays_last_delivered():
    injector = FaultInjector(FaultConfig(sample_stale_probability=1.0))
    # Nothing delivered yet: staleness degrades to a clean delivery.
    observed, fault = injector.perturb_sample({"a": 10.0})
    assert observed == {"a": 10.0} and fault is None
    observed, fault = injector.perturb_sample({"a": 99.0})
    assert observed == {"a": 10.0} and fault == "stale"
    assert injector.stats.samples_stale == 1


def test_perturb_sample_clean_path_consumes_no_draws():
    injector = FaultInjector(FaultConfig())
    before = injector._rng.bit_generator.state
    observed, fault = injector.perturb_sample({"a": 1.0})
    assert observed == {"a": 1.0} and fault is None
    assert injector._rng.bit_generator.state == before


# ---------------------------------------------------------------------------
# chaos-mode infrastructure faults
# ---------------------------------------------------------------------------


def test_chaos_verdicts_are_deterministic_per_seed():
    config = FaultConfig(
        seed=5,
        worker_kill_probability=0.4,
        shm_corruption_probability=0.4,
        solver_exception_probability=0.4,
        strategy_stall_probability=0.4,
        strategy_stall_seconds=0.25,
        shm_corruption_mode="torn",
    )
    runs = []
    for _ in range(2):
        injector = FaultInjector(config)
        runs.append(
            [
                (
                    injector.worker_kill(),
                    injector.shm_corruption(),
                    injector.solver_exception(),
                    injector.strategy_stall(),
                )
                for _ in range(30)
            ]
        )
    assert runs[0] == runs[1]
    kills, corruptions, solver, stalls = zip(*runs[0])
    assert any(kills) and not all(kills)
    assert set(corruptions) == {None, "torn"}
    assert any(solver)
    assert set(stalls) == {0.0, 0.25}


def test_chaos_zero_probability_surfaces_consume_no_draws():
    """Each chaos family draws only when its own knob is non-zero, so
    enabling one family never shifts another's schedule."""
    config = FaultConfig(seed=9, solver_exception_probability=0.5)

    pure = FaultInjector(config)
    expected = [pure.solver_exception() for _ in range(25)]

    interleaved = FaultInjector(config)
    verdicts = []
    for _ in range(25):
        assert interleaved.worker_kill() is False
        assert interleaved.shm_corruption() is None
        assert interleaved.corrupt_checkpoint('{"x": 1}') == '{"x": 1}'
        assert interleaved.strategy_stall() == 0.0
        verdicts.append(interleaved.solver_exception())
    assert verdicts == expected
    assert interleaved.stats.worker_kills == 0
    assert interleaved.stats.shm_corruptions == 0
    assert interleaved.stats.checkpoint_corruptions == 0
    assert interleaved.stats.strategy_stalls == 0


def test_chaos_inert_injector_leaves_generator_untouched():
    injector = FaultInjector(FaultConfig())
    before = injector._rng.bit_generator.state
    assert injector.worker_kill() is False
    assert injector.shm_corruption() is None
    assert injector.corrupt_checkpoint("payload") == "payload"
    assert injector.solver_exception() is False
    assert injector.strategy_stall() == 0.0
    assert injector._rng.bit_generator.state == before
    assert injector.stats.total() == 0


def test_corrupt_checkpoint_flips_exactly_one_byte():
    injector = FaultInjector(
        FaultConfig(seed=2, checkpoint_corruption_probability=1.0)
    )
    payload = '{"v": 1, "checksum": "abc", "snapshot": {"a": 1}}'
    corrupted = injector.corrupt_checkpoint(payload)
    assert corrupted != payload
    assert len(corrupted) == len(payload)
    diffs = [
        index
        for index, (old, new) in enumerate(zip(payload, corrupted))
        if old != new
    ]
    assert len(diffs) == 1
    assert injector.stats.checkpoint_corruptions == 1
    # Empty payloads pass through (nothing to flip, no draw consumed).
    state = injector._rng.bit_generator.state
    assert injector.corrupt_checkpoint("") == ""
    assert injector._rng.bit_generator.state == state


def test_chaos_stats_feed_the_total():
    injector = FaultInjector(
        FaultConfig(
            seed=1,
            worker_kill_probability=1.0,
            shm_corruption_probability=1.0,
            checkpoint_corruption_probability=1.0,
            solver_exception_probability=1.0,
            strategy_stall_probability=1.0,
        )
    )
    assert injector.worker_kill() is True
    assert injector.shm_corruption() == "flip"
    assert injector.corrupt_checkpoint("abcdef") != "abcdef"
    assert injector.solver_exception() is True
    assert injector.strategy_stall() == pytest.approx(0.1)
    assert injector.stats.worker_kills == 1
    assert injector.stats.shm_corruptions == 1
    assert injector.stats.checkpoint_corruptions == 1
    assert injector.stats.solver_exceptions == 1
    assert injector.stats.strategy_stalls == 1
    assert injector.stats.total() == 5


# ---------------------------------------------------------------------------
# the off contract: no faults config == inert faults config
# ---------------------------------------------------------------------------


def test_inert_fault_config_is_bit_identical_to_no_faults(small_testbed):
    """Attaching an inert injector must not change a run at all."""
    from repro.testbed import build_mistral

    horizon = 1800.0
    controller, initial = build_mistral(small_testbed)
    plain = small_testbed.run(controller, initial, "x", horizon=horizon)
    controller, initial = build_mistral(small_testbed)
    inert = small_testbed.run(
        controller, initial, "x", horizon=horizon, faults=FaultConfig()
    )

    assert plain.utility_increments.values == inert.utility_increments.values
    assert plain.power_watts.values == inert.power_watts.values
    for app_name, series in plain.response_times.items():
        assert series.values == inert.response_times[app_name].values
    assert [
        (record.start, record.end, record.description)
        for record in plain.actions
    ] == [
        (record.start, record.end, record.description)
        for record in inert.actions
    ]
    assert inert.fault_stats is not None
    assert inert.fault_stats.total() == 0
