"""Tests for windowed (time-averaged) transient accounting."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.host import HostSpec
from repro.cluster.transients import TransientModel
from repro.core.actions import MigrateVm
from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
    VmDescriptor,
)
from repro.power.model import HostPowerModel, SystemPowerModel
from repro.sim.engine import SimulationEngine


@pytest.fixture
def rig():
    engine = SimulationEngine()
    catalog = VmCatalog(
        [
            VmDescriptor("a-web-0", "a", "web"),
            VmDescriptor("a-db-0", "a", "db"),
        ]
    )
    cluster = Cluster(
        [HostSpec("h1"), HostSpec("h2")],
        catalog,
        ConstraintLimits(),
        engine,
        TransientModel(catalog),  # noise-free
        SystemPowerModel.uniform(["h1", "h2"], HostPowerModel()),
        workload_provider=lambda: {"a": 50.0},
    )
    cluster.deploy(
        Configuration(
            {
                "a-web-0": Placement("h1", 0.4),
                "a-db-0": Placement("h1", 0.4),
            },
            {"h1", "h2"},
        )
    )
    return engine, cluster


def test_windowed_mean_scales_with_overlap(rig):
    engine, cluster = rig
    handle = cluster.execute_plan([MigrateVm("a-db-0", "h2")])
    engine.run_until(500.0)
    record = handle.records[0]
    duration = record.spec.duration
    full_delta = record.spec.rt_delta["a"]

    window = 120.0
    start = record.start
    mean = cluster.transient_rt_delta_mean("a", start, start + window)
    expected = full_delta * min(duration, window) / window
    assert mean == pytest.approx(expected, rel=1e-6)


def test_windowed_mean_zero_outside_effect(rig):
    engine, cluster = rig
    handle = cluster.execute_plan([MigrateVm("a-db-0", "h2")])
    engine.run_until(500.0)
    end = handle.records[0].end
    assert cluster.transient_rt_delta_mean("a", end + 1, end + 121) == 0.0
    assert cluster.transient_power_delta_mean(end + 1, end + 121) == 0.0


def test_windowed_power_mean(rig):
    engine, cluster = rig
    handle = cluster.execute_plan([MigrateVm("a-db-0", "h2")])
    engine.run_until(500.0)
    record = handle.records[0]
    window_mean = cluster.transient_power_delta_mean(
        record.start, record.start + 2 * record.spec.duration
    )
    assert window_mean == pytest.approx(
        record.spec.total_power_delta() / 2.0, rel=1e-6
    )


def test_degenerate_window_is_zero(rig):
    _, cluster = rig
    assert cluster.transient_rt_delta_mean("a", 10.0, 10.0) == 0.0
    assert cluster.transient_power_delta_mean(20.0, 10.0) == 0.0


def test_effects_survive_for_recent_windows(rig):
    engine, cluster = rig
    handle = cluster.execute_plan([MigrateVm("a-db-0", "h2")])
    engine.run_until(500.0)
    # Instantaneous queries prune, but recent history must remain
    # available for windowed averages.
    cluster.transient_rt_delta("a")
    record = handle.records[0]
    assert (
        cluster.transient_rt_delta_mean("a", record.start, record.end) > 0.0
    )
