"""Tests for the utility model (Eqs. 1-3, Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import (
    TransientUtility,
    UtilityLedger,
    UtilityModel,
    UtilityParameters,
)


@pytest.fixture
def model():
    return UtilityModel()


# -- Fig. 3 shapes -----------------------------------------------------------


def test_reward_grows_with_rate(model):
    assert model.reward(0.0) < model.reward(50.0) < model.reward(100.0)
    assert model.reward(100.0) == pytest.approx(
        model.parameters.reward_scale
    )


def test_penalty_shrinks_in_magnitude(model):
    assert abs(model.penalty(0.0)) > abs(model.penalty(50.0)) > abs(
        model.penalty(100.0)
    )
    assert model.penalty(100.0) < 0


def test_rates_clamped_to_workload_scale(model):
    assert model.reward(150.0) == model.reward(100.0)
    assert model.penalty(-10.0) == model.penalty(0.0)


# -- Eq. 1 --------------------------------------------------------------------


def test_perf_utility_rate_reward_vs_penalty(model):
    target = model.parameters.target_response_time
    meeting = model.perf_utility_rate("app", 50.0, target - 0.01)
    missing = model.perf_utility_rate("app", 50.0, target + 0.01)
    assert meeting > 0 > missing
    interval = model.parameters.monitoring_interval
    assert meeting == pytest.approx(model.reward(50.0) / interval)
    assert missing == pytest.approx(model.penalty(50.0) / interval)


def test_boundary_counts_as_meeting(model):
    target = model.parameters.target_response_time
    assert model.perf_utility_rate("app", 50.0, target) > 0


def test_custom_target_function():
    model = UtilityModel(target_rt_fn=lambda app, rate: 1.0)
    assert model.target_response_time("x", 50.0) == 1.0
    assert model.perf_utility_rate("x", 50.0, 0.9) > 0


def test_total_perf_rate_sums_apps(model):
    target = model.parameters.target_response_time
    workloads = {"a": 50.0, "b": 50.0}
    response_times = {"a": target / 2, "b": target * 2}
    total = model.total_perf_rate(workloads, response_times)
    expected = model.perf_utility_rate(
        "a", 50.0, target / 2
    ) + model.perf_utility_rate("b", 50.0, target * 2)
    assert total == pytest.approx(expected)


# -- Eq. 2 --------------------------------------------------------------------


def test_power_utility_rate_matches_price(model):
    params = model.parameters
    rate = model.power_utility_rate(200.0)
    assert rate == pytest.approx(
        -200.0 * params.cost_per_watt_interval / params.monitoring_interval
    )
    assert model.power_utility_rate(0.0) == 0.0


# -- Eq. 3 --------------------------------------------------------------------


def test_overall_utility_combines_transients_and_steady(model):
    transients = [
        TransientUtility(duration=30.0, perf_rate=-0.01, power_rate=-0.02)
    ]
    value = model.overall_utility(
        transients,
        steady_perf_rate=0.05,
        steady_power_rate=-0.02,
        stability_interval=120.0,
    )
    expected = 30.0 * (-0.03) + 90.0 * 0.03
    assert value == pytest.approx(expected)


def test_overall_utility_clamps_overlong_plans(model):
    transients = [
        TransientUtility(duration=200.0, perf_rate=-0.01, power_rate=0.0)
    ]
    value = model.overall_utility(transients, 1.0, 0.0, 100.0)
    # No negative remaining time: only the transient accrual counts.
    assert value == pytest.approx(200.0 * -0.01)


def test_transient_utility_properties():
    transient = TransientUtility(10.0, 0.02, -0.01)
    assert transient.total_rate == pytest.approx(0.01)
    assert transient.accrued == pytest.approx(0.1)


# -- interval utility and ledger -----------------------------------------------


def test_interval_utility_positive_when_meeting(model):
    target = model.parameters.target_response_time
    value = model.interval_utility(
        {"a": 60.0}, {"a": target / 2}, watts=100.0
    )
    assert value == pytest.approx(model.reward(60.0) - 1.0)


def test_ledger_accumulates(model):
    ledger = UtilityLedger(model)
    target = model.parameters.target_response_time
    first = ledger.record(0.0, {"a": 60.0}, {"a": target / 2}, 100.0, 120.0)
    second = ledger.record(120.0, {"a": 60.0}, {"a": target * 2}, 100.0, 120.0)
    assert ledger.total() == pytest.approx(first + second)
    series = ledger.cumulative()
    assert series[-1][1] == pytest.approx(ledger.total())


# -- calibration ------------------------------------------------------------------


def test_calibrated_reward_hits_profit_anchor(model):
    calibrated = model.calibrated(
        default_config_watts=300.0, app_count=2, reference_rate=50.0
    )
    params = calibrated.parameters
    power_cost = 300.0 * params.cost_per_watt_interval
    rewards = 2 * calibrated.reward(50.0)
    assert rewards == pytest.approx(1.2 * power_cost)


def test_calibrated_validation(model):
    with pytest.raises(ValueError):
        model.calibrated(0.0, 2)
    with pytest.raises(ValueError):
        model.calibrated(100.0, 0)


def test_parameters_validation():
    with pytest.raises(ValueError):
        UtilityParameters(monitoring_interval=0.0)
    with pytest.raises(ValueError):
        UtilityParameters(reward_scale=-1.0)
    with pytest.raises(ValueError):
        UtilityParameters(
            penalty_floor_fraction=2.0, penalty_ceiling_fraction=1.0
        )


# -- properties ---------------------------------------------------------------------


@given(st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=80, deadline=None)
def test_property_reward_exceeds_penalty(rate):
    model = UtilityModel()
    assert model.reward(rate) > model.penalty(rate)


@given(
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.001, max_value=10.0),
)
@settings(max_examples=80, deadline=None)
def test_property_meeting_never_worse_than_missing(rate, response):
    model = UtilityModel()
    target = model.parameters.target_response_time
    meet = model.perf_utility_rate("a", rate, min(response, target))
    miss = model.perf_utility_rate("a", rate, target + response)
    assert meet >= miss


@given(st.floats(min_value=0.0, max_value=10_000.0))
@settings(max_examples=50, deadline=None)
def test_property_power_utility_nonpositive(watts):
    assert UtilityModel().power_utility_rate(watts) <= 0.0
