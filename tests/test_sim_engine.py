"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


def test_clock_starts_at_zero():
    assert SimulationEngine().now == 0.0


def test_events_fire_in_time_order():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(5.0, lambda: fired.append("b"))
    engine.schedule_at(2.0, lambda: fired.append("a"))
    engine.schedule_at(9.0, lambda: fired.append("c"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append(1))
    engine.schedule_at(1.0, lambda: fired.append(2))
    engine.run()
    assert fired == [1, 2]


def test_priority_breaks_time_ties():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append("low"), priority=5)
    engine.schedule_at(1.0, lambda: fired.append("high"), priority=-5)
    engine.run()
    assert fired == ["high", "low"]


def test_clock_advances_to_event_time():
    engine = SimulationEngine()
    seen = []
    engine.schedule_at(3.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [3.5]


def test_run_until_stops_at_deadline_and_sets_clock():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append(1))
    engine.schedule_at(10.0, lambda: fired.append(10))
    engine.run_until(5.0)
    assert fired == [1]
    assert engine.now == 5.0
    engine.run_until(20.0)
    assert fired == [1, 10]


def test_schedule_in_past_rejected():
    engine = SimulationEngine()
    engine.schedule_at(5.0, lambda: None)
    engine.run_until(5.0)
    with pytest.raises(SimulationError):
        engine.schedule_at(4.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        SimulationEngine().schedule_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = SimulationEngine()
    fired = []
    event = engine.schedule_at(1.0, lambda: fired.append(1))
    event.cancel()
    engine.run()
    assert fired == []


def test_events_scheduled_from_callbacks_run():
    engine = SimulationEngine()
    fired = []

    def outer():
        engine.schedule_after(2.0, lambda: fired.append(engine.now))

    engine.schedule_at(1.0, outer)
    engine.run()
    assert fired == [3.0]


def test_periodic_fires_on_schedule_and_stops():
    engine = SimulationEngine()
    fired = []
    stop = engine.schedule_periodic(2.0, lambda: fired.append(engine.now), start=0.0)
    engine.run_until(5.0)
    assert fired == [0.0, 2.0, 4.0]
    stop()
    engine.run_until(10.0)
    assert fired == [0.0, 2.0, 4.0]


def test_periodic_default_start_is_one_period():
    engine = SimulationEngine()
    fired = []
    engine.schedule_periodic(3.0, lambda: fired.append(engine.now))
    engine.run_until(7.0)
    assert fired == [3.0, 6.0]


def test_periodic_rejects_nonpositive_period():
    with pytest.raises(SimulationError):
        SimulationEngine().schedule_periodic(0.0, lambda: None)


def test_pending_count_ignores_cancelled():
    engine = SimulationEngine()
    keep = engine.schedule_at(1.0, lambda: None)
    drop = engine.schedule_at(2.0, lambda: None)
    drop.cancel()
    assert engine.pending_count() == 1
    assert keep.time == 1.0


def test_peek_time_skips_cancelled():
    engine = SimulationEngine()
    first = engine.schedule_at(1.0, lambda: None)
    engine.schedule_at(2.0, lambda: None)
    first.cancel()
    assert engine.peek_time() == 2.0


def test_step_returns_false_on_empty_queue():
    assert SimulationEngine().step() is False


def test_run_until_past_deadline_rejected():
    engine = SimulationEngine()
    engine.run_until(5.0)
    with pytest.raises(SimulationError):
        engine.run_until(1.0)
