"""Tests for the bounded LRU mapping behind the optimizer caches."""

import pytest

from repro.core.lru import LruDict


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        LruDict(0)
    with pytest.raises(ValueError):
        LruDict(-3)


def test_insert_beyond_capacity_evicts_oldest():
    cache = LruDict(3)
    for key in "abc":
        cache.put(key, key.upper())
    cache.put("d", "D")
    assert "a" not in cache
    assert list(cache) == ["b", "c", "d"]
    assert cache.evictions == 1


def test_hit_refreshes_recency():
    cache = LruDict(3)
    for key in "abc":
        cache.put(key, key.upper())
    # Touch the oldest entry: "b" becomes the eviction victim instead.
    assert cache.get("a") == "A"
    cache.put("d", "D")
    assert "a" in cache
    assert "b" not in cache
    assert list(cache) == ["c", "a", "d"]


def test_put_refreshes_existing_key_without_evicting():
    cache = LruDict(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert
    assert len(cache) == 2
    assert cache.evictions == 0
    assert list(cache) == ["b", "a"]
    cache.put("c", 3)  # now "b" is the oldest
    assert "b" not in cache
    assert cache.get("a") == 10


def test_miss_returns_default_and_counts():
    cache = LruDict(2)
    assert cache.get("missing") is None
    assert cache.get("missing", 42) == 42
    cache.put("a", 1)
    cache.get("a")
    assert cache.misses == 2
    assert cache.hits == 1


def test_clear_drops_entries_keeps_counters():
    cache = LruDict(2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.capacity == 2


def test_eviction_sequence_is_strictly_lru():
    cache = LruDict(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")
    cache.put("c", 3)  # evicts "b"
    cache.get("a")
    cache.put("d", 4)  # evicts "c"
    assert list(cache) == ["a", "d"]
    assert cache.evictions == 2
