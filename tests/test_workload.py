"""Tests for traces, the ARMA estimator, and the workload monitor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.arma import StabilityIntervalEstimator
from repro.workload.monitor import WorkloadMonitor
from repro.workload.traces import (
    EXPERIMENT_DURATION,
    Trace,
    hp_trace,
    standard_traces,
    world_cup_trace,
)


# -- traces -------------------------------------------------------------------


def test_trace_interpolates_breakpoints():
    trace = Trace(
        [(0.0, 10.0), (100.0, 20.0)], ripple_amplitude=0.0
    )
    assert trace.baseline(50.0) == pytest.approx(15.0)
    assert trace.rate(50.0) == pytest.approx(15.0)
    assert trace(0.0) == pytest.approx(10.0)


def test_trace_clamps_outside_horizon():
    trace = Trace([(10.0, 5.0), (20.0, 9.0)], ripple_amplitude=0.0)
    assert trace.baseline(0.0) == 5.0
    assert trace.baseline(100.0) == 9.0


def test_trace_respects_floor_and_ceiling():
    trace = Trace(
        [(0.0, 1.0), (100.0, 99.0)],
        ripple_amplitude=10.0,
        floor=0.0,
        ceiling=100.0,
    )
    for t in range(0, 101, 5):
        assert 0.0 <= trace.rate(float(t)) <= 100.0


def test_trace_validation():
    with pytest.raises(ValueError):
        Trace([(0.0, 1.0)])
    with pytest.raises(ValueError):
        Trace([(10.0, 1.0), (0.0, 2.0)])
    with pytest.raises(ValueError):
        Trace([(0.0, 1.0), (0.0, 2.0)])


def test_sample_series_step():
    trace = Trace([(0.0, 10.0), (100.0, 10.0)], ripple_amplitude=0.0)
    series = trace.sample_series(0.0, 100.0, 25.0)
    assert [t for t, _ in series] == [0.0, 25.0, 50.0, 75.0, 100.0]
    with pytest.raises(ValueError):
        trace.sample_series(0.0, 10.0, 0.0)


def test_world_cup_has_flash_crowd_and_evening_peak():
    trace = world_cup_trace()
    flash = max(trace.rate(t) for t in range(6700, 8100, 60))
    evening = max(trace.rate(t) for t in range(15600, 19500, 60))
    afternoon = max(trace.rate(t) for t in range(0, 5000, 60))
    assert flash > 85.0
    assert evening > 80.0
    assert afternoon < 40.0


def test_hp_trace_is_moderate():
    trace = hp_trace()
    peak = trace.peak_rate()
    assert 35.0 <= peak <= 60.0


def test_variants_differ():
    a, b = world_cup_trace(0), world_cup_trace(1)
    assert any(
        abs(a.rate(t) - b.rate(t)) > 1.0 for t in range(0, 23400, 600)
    )


def test_standard_traces_assignment():
    traces = standard_traces(["A", "B", "C", "D"])
    assert traces["A"].name.startswith("world-cup")
    assert traces["C"].name.startswith("hp")
    assert len(traces) == 4


# -- ARMA estimator ---------------------------------------------------------------


def test_estimator_converges_on_constant_series():
    estimator = StabilityIntervalEstimator(initial_estimate=500.0)
    for _ in range(10):
        estimate = estimator.observe(300.0)
    assert estimate == pytest.approx(300.0, rel=0.05)


def test_estimator_tracks_level_shift():
    estimator = StabilityIntervalEstimator()
    for _ in range(6):
        estimator.observe(120.0)
    for _ in range(6):
        estimate = estimator.observe(600.0)
    assert estimate == pytest.approx(600.0, rel=0.2)


def test_estimator_smooths_alternating_series():
    estimator = StabilityIntervalEstimator()
    values = [240.0, 480.0] * 8
    for value in values:
        estimate = estimator.observe(value)
    # A good smoother should sit near the mean, not chase the ends.
    assert 280.0 < estimate < 440.0


def test_estimator_validation():
    with pytest.raises(ValueError):
        StabilityIntervalEstimator(history=0)
    with pytest.raises(ValueError):
        StabilityIntervalEstimator(gamma=2.0)
    with pytest.raises(ValueError):
        StabilityIntervalEstimator(initial_estimate=0.0)
    with pytest.raises(ValueError):
        StabilityIntervalEstimator().observe(-1.0)


def test_estimator_trace_records_states():
    estimator = StabilityIntervalEstimator()
    estimator.observe(100.0)
    estimator.observe(200.0)
    assert len(estimator.trace) == 2
    assert estimator.trace[0].measured == 100.0
    assert 0.0 <= estimator.trace[1].beta <= 1.0


@given(st.lists(st.floats(min_value=1.0, max_value=10_000.0), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_property_estimate_within_observed_range(values):
    estimator = StabilityIntervalEstimator(initial_estimate=values[0])
    for value in values:
        estimate = estimator.observe(value)
    # Convex combination of measurements: never outside their envelope.
    assert min(values) - 1e-6 <= estimate <= max(values) + 1e-6


# -- workload monitor ----------------------------------------------------------------


def test_first_observation_establishes_bands():
    monitor = WorkloadMonitor(band_width=8.0)
    escape = monitor.observe(0.0, {"a": 50.0})
    assert escape is not None
    assert escape.measured_interval == 0.0
    assert monitor.band_centers == {"a": 50.0}


def test_within_band_is_quiet():
    monitor = WorkloadMonitor(band_width=8.0)
    monitor.observe(0.0, {"a": 50.0})
    assert monitor.observe(120.0, {"a": 53.9}) is None
    assert monitor.observe(240.0, {"a": 46.1}) is None


def test_escape_measures_interval_and_recentres():
    monitor = WorkloadMonitor(band_width=8.0)
    monitor.observe(0.0, {"a": 50.0, "b": 20.0})
    escape = monitor.observe(360.0, {"a": 60.0, "b": 21.0})
    assert escape is not None
    assert escape.escaped_apps == ("a",)
    assert escape.measured_interval == pytest.approx(360.0)
    # both bands re-center on the current workloads
    assert monitor.band_centers == {"a": 60.0, "b": 21.0}


def test_zero_band_escapes_every_sample():
    monitor = WorkloadMonitor(band_width=0.0)
    monitor.observe(0.0, {"a": 50.0})
    for step in range(1, 5):
        escape = monitor.observe(step * 120.0, {"a": 50.0 + 0.001 * step})
        assert escape is not None


def test_monitor_tracks_only_named_apps():
    monitor = WorkloadMonitor(band_width=8.0, app_names=("a",))
    monitor.observe(0.0, {"a": 50.0, "b": 10.0})
    assert monitor.observe(120.0, {"a": 51.0, "b": 90.0}) is None


def test_measured_intervals_exclude_bootstrap():
    monitor = WorkloadMonitor(band_width=1.0)
    monitor.observe(0.0, {"a": 10.0})
    monitor.observe(120.0, {"a": 20.0})
    monitor.observe(360.0, {"a": 30.0})
    assert monitor.measured_intervals() == [120.0, 240.0]


def test_monitor_validation():
    with pytest.raises(ValueError):
        WorkloadMonitor(band_width=-1.0)


def test_escape_feeds_arma_estimator():
    monitor = WorkloadMonitor(band_width=1.0)
    monitor.observe(0.0, {"a": 10.0})
    escape = monitor.observe(300.0, {"a": 20.0})
    assert escape.estimated_next_interval > 0.0
    assert len(monitor.estimator.trace) == 1
