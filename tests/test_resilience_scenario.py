"""Acceptance scenario: host crash + failed migrations during an escape.

Drives the testbed with a scripted controller that issues migration
plans on a synthetic band escape (the real hierarchy migrates rarely
and unpredictably, so the scenario scripts the plans).  The fault
schedule fails the first migration twice — exercising retry with
backoff — and crashes a host while a later migration is copying toward
it.  The run must complete without exceptions, end in a consistent
full configuration, and the telemetry trace must roll up the fault /
retry / rollback counts (DESIGN.md §10 acceptance scenario).
"""

import importlib.util
import pathlib
import sys

import pytest

from repro.core.actions import MigrateVm
from repro.core.controller import Decision
from repro.faults import FaultConfig, HostCrash, ScriptedActionFault
from repro.telemetry import runtime
from repro.workload.monitor import BandEscape

SCRIPTS = pathlib.Path(__file__).resolve().parent.parent / "scripts"


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def telemetry_off():
    runtime.disable()
    runtime.registry.reset()
    yield
    runtime.disable()
    runtime.registry.reset()


class ScriptedController:
    """Issues pre-planned adaptation actions at fixed sample times."""

    name = "scripted"

    def __init__(self, plans: dict[float, list]) -> None:
        self.plans = dict(plans)
        self.decisions: list[Decision] = []
        self.utility = 0.0

    def record_interval_utility(self, value: float) -> None:
        self.utility += value

    def on_sample(self, now, workloads, configuration, busy):
        actions = self.plans.get(now)
        if actions is None or busy:
            return None
        del self.plans[now]
        escape = BandEscape(
            time=now,
            escaped_apps=tuple(sorted(workloads)),
            measured_interval=0.0,
            estimated_next_interval=600.0,
            workloads=dict(workloads),
        )
        decision = Decision(
            time=now,
            controller=self.name,
            actions=tuple(actions),
            control_window=600.0,
            decision_seconds=5.0,
            search_watts=6.0,
            outcome=None,
            escape=escape,
        )
        self.decisions.append(decision)
        return decision


def scenario_faults() -> FaultConfig:
    return FaultConfig(
        seed=0,
        scripted=(
            ScriptedActionFault(kind="migrate", occurrence=0),
            ScriptedActionFault(kind="migrate", occurrence=1),
        ),
        host_crashes=(HostCrash(time=500.0, host_id="host-3"),),
    )


def test_scenario_completes_consistently(small_testbed, tmp_path):
    initial = small_testbed.default_configuration()
    # t=120: consolidate RUBiS-1's web tier onto its database host
    # (fails twice, then lands; host-1 ends at exactly the 0.8 cap
    # limit).  t=480: migrate toward host-3, which crashes at t=500
    # with the copy still in flight.
    controller = ScriptedController(
        {
            120.0: [MigrateVm("RUBiS-1-web-0", "host-1")],
            480.0: [MigrateVm("RUBiS-2-web-0", "host-3")],
        }
    )

    trace_path = tmp_path / "scenario.jsonl"
    runtime.enable(jsonl_path=str(trace_path))
    try:
        metrics = small_testbed.run(
            controller,
            initial,
            "scenario",
            horizon=1800.0,
            faults=scenario_faults(),
        )
    finally:
        runtime.disable()

    # Both plans were issued; all scripted faults fired.
    assert len(controller.decisions) == 2
    stats = metrics.fault_stats
    assert stats.action_failures == 2
    assert stats.host_crashes == 1

    # The retried migration landed despite two failures.
    descriptions = [record.description for record in metrics.actions]
    assert (
        descriptions.count("migrate(RUBiS-1-web-0 -> host-1) [failed]") == 2
    )
    assert "migrate(RUBiS-1-web-0 -> host-1)" in descriptions
    # The crash aborted the in-flight migration toward host-3.
    assert any("[aborted]" in line for line in descriptions)

    # Consistent full configuration: the landed migrations applied, the
    # stranded VM is gone, nothing violates the constraints.
    final = metrics.final_configuration
    assert final.violations(small_testbed.catalog, small_testbed.limits) == []
    assert final.placement_of("RUBiS-1-web-0").host_id == "host-1"
    assert final.placement_of("RUBiS-1-app-0").host_id == "host-0"
    # host-3 died: its database VM is stranded, the host unpowered, and
    # the crash-aborted migration never moved RUBiS-2-web-0.
    assert final.placement_of("RUBiS-2-db-0") is None
    assert "host-3" not in final.powered_hosts
    assert final.placement_of("RUBiS-2-web-0").host_id == "host-2"

    # Utility accrued every interval (dropped samples would shrink it).
    assert len(metrics.utility_increments) == 16
    assert metrics.power_watts.values  # the run produced measurements

    # The telemetry rollup surfaces the fault/retry/rollback counts.
    report_module = load_script("telemetry_report")
    events = report_module.read_trace(trace_path)
    report = report_module.build_report(events)
    resilience = report["resilience"]
    assert resilience["faults"]["actions"].get("failed") == 2
    assert resilience["faults"]["host_crashes"] == 1
    assert resilience["recovery"]["retries"] == 2
    assert resilience["recovery"]["plans_aborted"] == 1
    # The rendered report includes the resilience section.
    rendered = report_module.render(report)
    assert "== resilience ==" in rendered
    assert "host crashes: 1" in rendered
