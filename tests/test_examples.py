"""Smoke tests for the example scripts.

The examples run multi-hour simulated horizons when invoked directly;
here we import them and exercise their building blocks on shortened
horizons so the suite stays fast.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_exist_and_import():
    for name in (
        "quickstart",
        "flash_crowd",
        "hierarchical_datacenter",
        "custom_application",
        "fault_injection",
    ):
        module = load_example(name)
        assert hasattr(module, "main")


def test_custom_application_builds():
    module = load_example("custom_application")
    app = module.make_ticketing_app()
    assert app.name == "tickets"
    assert app.tier("db").max_replicas == 2
    trace = module.lunchtime_trace()
    lunch_peak = max(trace.rate(t) for t in range(5400, 7300, 120))
    morning = trace.rate(600.0)
    assert lunch_peak > morning


def test_custom_application_short_run():
    module = load_example("custom_application")
    from repro.apps import ApplicationSet, make_rubis_application
    from repro.testbed import Testbed, build_mistral
    from repro.workload.traces import world_cup_trace

    applications = ApplicationSet(
        [module.make_ticketing_app(), make_rubis_application("RUBiS-1")]
    )
    testbed = Testbed(
        applications,
        {
            "tickets": module.lunchtime_trace(),
            "RUBiS-1": world_cup_trace(variant=0),
        },
        host_ids=[f"host-{index}" for index in range(4)],
        seed=7,
    )
    controller, initial = build_mistral(testbed)
    metrics = testbed.run(controller, initial, "custom", horizon=1800.0)
    assert "tickets" in metrics.response_times
    assert metrics.response_times["tickets"].mean() > 0.0
