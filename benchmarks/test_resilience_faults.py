"""Bench: resilience under injected faults (beyond the paper).

The paper assumes adaptation actions succeed.  This benchmark runs the
same Mistral hierarchy twice over the flash-crowd ramp — once clean,
once with scripted migration failures, a 20% per-attempt action failure
rate, and one host crash — and compares what the faults cost in Eq. 3
utility.  The faulted run must complete without exceptions and keep the
utility gap bounded; retries/rollback/re-planning details are asserted
by tests/test_resilience_scenario.py.
"""

from conftest import emit

from repro.experiments.report import format_table, paper_vs_measured
from repro.faults import FaultConfig, HostCrash, ScriptedActionFault
from repro.testbed import make_testbed, build_mistral, summarize_runs

#: First 3 h of the trace: covers the flash crowd (~16:52 = t~6720 s).
HORIZON = 10800.0
CRASH_TIME = 5400.0
CRASH_HOST = "host-3"


def fault_config() -> FaultConfig:
    """Scripted first-two-migration failures, dicey actions, one crash."""
    return FaultConfig(
        seed=0,
        default_fail_probability=0.2,
        scripted=(
            ScriptedActionFault(kind="migrate", occurrence=0),
            ScriptedActionFault(kind="migrate", occurrence=1),
        ),
        host_crashes=(HostCrash(time=CRASH_TIME, host_id=CRASH_HOST),),
    )


def run_pair():
    testbed = make_testbed(2, seed=0)
    controller, initial = build_mistral(testbed)
    clean = testbed.run(controller, initial, "mistral", horizon=HORIZON)
    controller, initial = build_mistral(testbed)
    # Same strategy string so both runs draw from the same noise
    # streams; relabel for the report afterwards.
    faulted = testbed.run(
        controller, initial, "mistral", horizon=HORIZON, faults=fault_config()
    )
    clean.strategy = "mistral/clean"
    faulted.strategy = "mistral/faulted"
    return clean, faulted


def test_resilience_faults(benchmark):
    clean, faulted = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    stats = faulted.fault_stats

    rows = summarize_runs([clean, faulted])
    gap = clean.cumulative_utility() - faulted.cumulative_utility()
    aborted = sum(
        1 for record in faulted.actions if "[failed]" in record.description
    )
    rolled_back = sum(
        1 for record in faulted.actions if "[rollback]" in record.description
    )
    text = format_table(
        rows, title="Resilience: clean vs. faulted Mistral (first 3 h)"
    )
    text += (
        f"\n\nfault tally: {stats.action_failures} action failures, "
        f"{stats.action_stalls} stalls, {stats.host_crashes} host crash, "
        f"{stats.samples_dropped} dropped / {stats.samples_stale} stale "
        f"samples ({stats.total()} total)"
    )
    text += (
        f"\naction records: {aborted} failed attempts, "
        f"{rolled_back} rollback actions"
    )
    text += "\n\n" + paper_vs_measured(
        [
            (
                "faulted run completes consistently",
                "n/a (paper assumes success)",
                "yes",
            ),
            ("host crashes injected", "n/a", stats.host_crashes),
            (
                "utility gap paid for faults",
                "bounded",
                round(gap, 1),
            ),
        ]
    )
    emit("resilience_faults", text)

    assert stats.host_crashes == 1
    assert stats.total() >= 2
    assert faulted.cumulative_utility() <= clean.cumulative_utility()
