"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table or figure, prints the
paper-vs-measured comparison, and also writes it to ``results/`` so the
output survives pytest's capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
