"""Bench: Fig. 10 — the cost of the decision procedure itself."""

from conftest import emit

from repro.experiments.fig10_search_cost import level_durations, run_fig10
from repro.experiments.report import format_table, paper_vs_measured


def test_fig10_search_cost(benchmark):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    checks = result.checks()
    peaks = result.peak_durations()
    utilities = result.utilities()
    power_pct = result.search_power_pct()

    text = paper_vs_measured(
        [
            (
                "search power over idle",
                "up to ~12%",
                f"up to {max(pct for _, pct in power_pct):.1f}%"
                if power_pct
                else "n/a",
            ),
            (
                "peak search duration (naive)",
                "~24 s",
                f"{peaks['naive']:.1f} s",
            ),
            (
                "peak search duration (self-aware)",
                "~5.5 s",
                f"{peaks['self-aware']:.1f} s",
            ),
            (
                "cumulative utility (self-aware)",
                152.3,
                round(utilities["self-aware"], 1),
            ),
            ("cumulative utility (naive)", 135.3, round(utilities["naive"], 1)),
        ],
        title="Fig. 10: cost of search",
    )
    text += "\n" + format_table(
        level_durations(result), title="mean decision durations per level"
    )
    text += "\nchecks: " + ", ".join(
        f"{name}={value}" for name, value in checks.items()
    )
    emit("fig10_search_cost", text)

    assert checks["naive_searches_longer"], peaks
    assert checks["self_aware_better_utility"], utilities
    assert checks["search_power_bounded"]
