"""Bench: Fig. 9 — cumulative utility of the four strategies."""

from conftest import emit

from repro.experiments.fig9_cumulative_utility import (
    comparison_rows,
    cumulative_series,
    ordering_checks,
    run_fig9,
)
from repro.experiments.report import format_series, format_table


def test_fig9_cumulative_utility(benchmark):
    comparison = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    rows = comparison_rows(comparison)
    checks = ordering_checks(comparison)

    lines = [
        format_table(
            rows, title="Fig. 9: cumulative utility (paper vs measured)"
        ),
        "",
    ]
    for strategy, series in sorted(cumulative_series(comparison).items()):
        lines.append(format_series(series, strategy, max_points=10))
    lines.append(
        "checks: "
        + ", ".join(f"{name}={value}" for name, value in checks.items())
    )
    emit("fig9_cumulative_utility", "\n".join(lines))

    assert checks["mistral_wins"], rows
    assert checks["pwr_cost_second"], rows
    # Mistral must clearly outstrip the best baseline.
    measured = {row["strategy"]: row["measured"] for row in rows}
    assert measured["mistral"] > measured["pwr-cost"] * 1.05
