"""Bench: Fig. 6 — stability-interval estimation accuracy."""

from conftest import emit

from repro.experiments.fig6_stability import run_fig6
from repro.experiments.report import format_series, paper_vs_measured


def test_fig6_stability(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    series = [
        (float(index), measured)
        for index, measured in enumerate(result.measured)
    ]
    text = format_series(series, "measured stability intervals (s)")
    text += "\n" + paper_vs_measured(
        [
            (
                "mean estimation error",
                "~14%",
                f"{100 * result.mean_relative_error():.1f}%",
            ),
            ("control windows observed", 96, len(result.measured)),
        ],
        title="Fig. 6: ARMA stability-interval estimation",
    )
    emit("fig6_stability", text)

    # The ARMA filter must clearly beat a degenerate always-minimum
    # predictor, and track within the same order of magnitude.
    assert len(result.measured) > 20
    assert result.mean_relative_error() < 1.0
