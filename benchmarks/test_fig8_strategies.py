"""Bench: Fig. 8 — response times and power across the four strategies."""

from conftest import emit

from repro.experiments.fig8_strategies import (
    power_series,
    response_time_series,
    run_fig8,
    shape_checks,
)
from repro.experiments.report import format_series, format_table


def test_fig8_strategies(benchmark):
    comparison = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    checks = shape_checks(comparison)
    target = comparison.target

    lines = [f"target response time: {target * 1000:.0f} ms", ""]
    for app_name in ("RUBiS-1", "RUBiS-2"):
        lines.append(f"--- {app_name} response time (s) ---")
        for strategy, series in sorted(
            response_time_series(comparison, app_name).items()
        ):
            lines.append(format_series(series, strategy, max_points=10))
        lines.append("")
    lines.append("--- total power (W) ---")
    for strategy, series in sorted(power_series(comparison).items()):
        lines.append(format_series(series, strategy, max_points=10))
    lines.append("")

    rows = []
    for strategy, run in sorted(comparison.runs.items()):
        rows.append(
            {
                "strategy": strategy,
                "mean_power_W": round(run.mean_power(), 1),
                "actions": run.action_count(),
                "viol_RUBiS-1": round(
                    run.response_times["RUBiS-1"].fraction_above(target), 3
                ),
                "viol_RUBiS-2": round(
                    run.response_times["RUBiS-2"].fraction_above(target), 3
                ),
                "mean_hosts": round(run.hosts_powered.mean(), 2),
            }
        )
    lines.append(format_table(rows, title="Fig. 8 summary"))
    lines.append(
        "checks: "
        + ", ".join(f"{name}={value}" for name, value in checks.items())
    )
    emit("fig8_strategies", "\n".join(lines))

    assert checks["perf_cost_burns_most_power"]
    assert checks["perf_cost_best_response_times"]
    assert checks["perf_pwr_most_adaptations"]
    assert checks["mistral_power_below_perf_cost"]
    assert checks["mistral_fewer_actions_than_perf_pwr"]
