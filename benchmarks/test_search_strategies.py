"""Bench: pluggable search strategies — parity and anytime behavior."""

from conftest import emit

from repro.experiments.report import format_table
from repro.experiments.search_strategies import (
    ANYTIME_DEADLINE_SECONDS,
    PARITY_FLOOR,
    comparison_checks,
    run_strategy_comparison,
)


def test_search_strategy_comparison(benchmark):
    rows = benchmark.pedantic(
        run_strategy_comparison, rounds=1, iterations=1
    )
    checks = comparison_checks(rows)

    table_rows = []
    for row in rows:
        table_rows.append(
            {
                "scenario": f"{row.scenario} ({row.host_count} hosts)",
                "backend": row.label,
                "wall_s": round(row.wall_seconds, 2),
                "U_pred": round(row.predicted_utility, 1),
                "U_null": round(row.null_utility, 1),
                "parity": (
                    round(row.parity, 3) if row.parity is not None else "-"
                ),
                "aborted": row.deadline_aborted,
                "plan_len": row.plan_actions,
            }
        )
    text = format_table(
        table_rows,
        title=(
            "Search strategies: utility parity vs self-aware A* "
            f"(floor {PARITY_FLOOR}), anytime tier under a "
            f"{ANYTIME_DEADLINE_SECONDS:.0f} s deadline"
        ),
    )
    text += "\nchecks: " + ", ".join(
        f"{name}={value}" for name, value in checks.items()
    )
    emit("search_strategies", text)

    assert checks["walkers_reach_astar_parity"]
    assert checks["naive_astar_hits_deadline"]
    assert checks["walkers_complete_under_deadline"]
    assert checks["walkers_beat_pruned_astar_at_scale"]
    assert checks["all_plans_beat_null"]
