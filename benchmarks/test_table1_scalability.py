"""Bench: Table I — scalability of the hierarchical controller."""

from conftest import emit

from repro.experiments.report import format_table
from repro.experiments.table1_scalability import (
    PAPER_TABLE1,
    run_table1,
    scaling_checks,
)


#: Table I runs on the first three hours of the horizon (through the
#: flash crowd) to keep the 3- and 4-app naive-search runs tractable;
#: utilities are therefore smaller than the paper's full-horizon
#: values, but the scaling shape is what the table demonstrates.
TABLE1_HORIZON = 3.0 * 3600.0


def test_table1_scalability(benchmark):
    rows = benchmark.pedantic(
        run_table1, kwargs={"horizon": TABLE1_HORIZON}, rounds=1, iterations=1
    )
    checks = scaling_checks(rows)

    table_rows = []
    for row in rows:
        paper = PAPER_TABLE1[row.app_count]
        table_rows.append(
            {
                "scenario": f"{row.app_count}-app ({row.vm_count} VM / {row.host_count} hosts)",
                "selfaware_s": round(row.self_aware_overall_s, 2),
                "selfaware_L1": round(row.self_aware_level1_s, 2),
                "selfaware_L2": round(row.self_aware_level2_s, 2),
                "naive_s": round(row.naive_overall_s, 2),
                "naive_L2": round(row.naive_level2_s, 2),
                "paper_selfaware_s": paper["self_aware_ms"] / 1000.0,
                "paper_naive_s": paper["naive_ms"] / 1000.0,
                "U_mistral": round(row.mistral_utility, 1),
                "U_ideal": round(row.ideal_utility, 1),
            }
        )
    text = format_table(
        table_rows, title="Table I: search durations and utilities"
    )
    text += "\nchecks: " + ", ".join(
        f"{name}={value}" for name, value in checks.items()
    )
    emit("table1_scalability", text)

    assert checks["naive_slower_everywhere"]
    assert checks["ideal_bounds_mistral"]
    assert checks["naive_scales_worse_than_self_aware"]
