"""Bench: Fig. 4 — the four application workload traces."""

from conftest import emit

from repro.experiments.fig4_workloads import run_fig4, shape_checks
from repro.experiments.report import format_series


def test_fig4_workloads(benchmark):
    series = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    checks = shape_checks(series)

    lines = [
        format_series(samples, app_name)
        for app_name, samples in sorted(series.items())
    ]
    lines.append(
        "checks: "
        + ", ".join(f"{name}={value}" for name, value in checks.items())
    )
    emit("fig4_workloads", "\n".join(lines))

    assert all(checks.values()), checks
