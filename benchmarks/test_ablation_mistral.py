"""Ablation: Mistral's extensions beyond the paper's text.

DESIGN.md §7 documents two controller-level extensions — online
model-feedback calibration and workload-trend extrapolation.  This
bench runs Mistral with each switched off over the flash-crowd half of
the horizon and reports what each contributes.
"""

from conftest import emit

from repro.experiments.report import format_table
from repro.testbed.scenarios import build_mistral, make_testbed

HORIZON = 3.0 * 3600.0

VARIANTS = (
    ("full", {}),
    ("no-feedback", {"enable_feedback": False}),
    ("no-trend", {"enable_trend": False}),
    ("bare", {"enable_feedback": False, "enable_trend": False}),
)


def run_ablation():
    testbed = make_testbed(app_count=2, seed=0)
    target = testbed.utility.parameters.target_response_time
    rows = []
    for name, kwargs in VARIANTS:
        controller, initial = build_mistral(testbed, **kwargs)
        metrics = testbed.run(
            controller, initial, f"ablation-{name}", horizon=HORIZON
        )
        rows.append(
            {
                "variant": name,
                "utility": round(metrics.cumulative_utility(), 1),
                "power_W": round(metrics.mean_power(), 1),
                "actions": metrics.action_count(),
                "viol_total": round(
                    sum(
                        series.fraction_above(target)
                        for series in metrics.response_times.values()
                    ),
                    3,
                ),
            }
        )
    return rows


def test_ablation_mistral(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "ablation_mistral",
        format_table(
            rows,
            title=(
                "Ablation: Mistral extensions over the first 3 h "
                "(feedback calibration, trend extrapolation)"
            ),
        ),
    )
    by_name = {row["variant"]: row for row in rows}
    # All variants must run end-to-end and produce sane physics; the
    # utility deltas themselves are the recorded finding.
    assert set(by_name) == {"full", "no-feedback", "no-trend", "bare"}
    assert all(150.0 <= row["power_W"] <= 400.0 for row in rows)
