"""Ablation: the adaptation-search engineering choices.

DESIGN.md §7 documents the search mechanics added to make Algorithm 1
converge: plan seeding, the cost-to-go guidance potential, and the
trapezoidal to-go discount.  This bench runs one hard search (the
flash-crowd scale-up decision) under each ablation and reports quality
(the realized steady rate of the returned configuration) and effort
(expansions / virtual decision time).
"""

from dataclasses import replace

from conftest import emit

from repro.core.config import Configuration, Placement
from repro.core.search import AdaptationSearch, SearchSettings
from repro.experiments.report import format_table
from repro.experiments.strategies import get_testbed
from repro.testbed.scenarios import _global_perf_pwr

WORKLOADS = {"RUBiS-1": 90.0, "RUBiS-2": 85.0}
WINDOW = 1800.0

VARIANTS = (
    ("full", {}),
    ("no-seeding", {"seed_with_plan": False}),
    ("no-guidance", {"guidance_weight": 0.0, "max_expansions": 2000}),
    ("full-gap-pricing", {"togo_discount": 1.0}),
)


def start_configuration() -> Configuration:
    return Configuration(
        {
            "RUBiS-1-web-0": Placement("host-0", 0.2),
            "RUBiS-1-app-0": Placement("host-0", 0.2),
            "RUBiS-1-db-0": Placement("host-1", 0.4),
            "RUBiS-2-web-0": Placement("host-0", 0.2),
            "RUBiS-2-app-0": Placement("host-0", 0.2),
            "RUBiS-2-db-0": Placement("host-1", 0.4),
        },
        {"host-0", "host-1"},
    )


def run_ablation():
    testbed = get_testbed(2, 0)
    optimizer = _global_perf_pwr(testbed)
    rows = []
    for name, overrides in VARIANTS:
        settings = replace(SearchSettings(), **overrides)
        search = AdaptationSearch(
            testbed.applications,
            testbed.catalog,
            testbed.limits,
            testbed.estimator,
            testbed.cost_manager,
            optimizer,
            testbed.host_ids,
            settings,
        )
        outcome = search.search(start_configuration(), WORKLOADS, WINDOW)
        final = testbed.estimator.estimate(
            outcome.final_configuration, WORKLOADS
        )
        rows.append(
            {
                "variant": name,
                "actions": len(outcome.actions),
                "expansions": outcome.expansions,
                "decision_s": round(outcome.decision_seconds, 1),
                "final_rate": round(final.total_rate, 4),
                "predicted_U": round(outcome.predicted_utility, 1),
            }
        )
    return rows


def test_ablation_search(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "ablation_search",
        format_table(
            rows,
            title="Ablation: search mechanics on the flash-crowd decision",
        ),
    )
    by_name = {row["variant"]: row for row in rows}
    # Plan seeding is what lands good incumbents: without it the search
    # cannot reach a scale-up plan within its budget.
    assert by_name["no-seeding"]["final_rate"] < by_name["full"]["final_rate"]
    # The full configuration must land a capacity fix, not stay put.
    assert by_name["full"]["actions"] > 0
    assert by_name["full"]["final_rate"] > 0.0
