"""Bench: Fig. 7 — measured transient adaptation costs."""

from conftest import emit

from repro.experiments.fig7_adaptation_costs import (
    monotonicity_checks,
    power_cycle_costs,
    run_fig7,
)
from repro.experiments.report import format_table, paper_vs_measured


def test_fig7_adaptation_costs(benchmark):
    rows = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    checks = monotonicity_checks(rows)
    cycles = power_cycle_costs()

    sessions_of_interest = {100, 400, 800}
    shown = [row for row in rows if row["sessions"] in sessions_of_interest]
    text = format_table(
        shown, title="Fig. 7: adaptation costs by workload (cost tables)"
    )
    text += "\n" + paper_vs_measured(
        [
            ("host start", "~90 s / ~80 W", (
                f"{cycles['power_on']['duration_s']:.0f} s / "
                f"{cycles['power_on']['delta_watts']:.0f} W"
            )),
            ("host shutdown", "~30 s / ~20 W", (
                f"{cycles['power_off']['duration_s']:.0f} s / "
                f"{cycles['power_off']['delta_watts']:.0f} W"
            )),
            ("MySQL replica add delay at peak", "~70 s", (
                f"{max(float(r['delay_ms']) for r in rows if r['action'] == 'Add replica (MySQL)') / 1000:.0f} s"
            )),
        ],
        title="paper §V-B anchors",
    )
    text += "\nmonotonicity: " + ", ".join(
        f"{name}={value}" for name, value in checks.items()
    )
    emit("fig7_adaptation_costs", text)

    assert all(checks.values()), checks
    assert 60 <= cycles["power_on"]["duration_s"] <= 120
    assert 20 <= cycles["power_off"]["duration_s"] <= 45
