"""Bench: Fig. 1 — cost of a single VM live migration."""

from conftest import emit

from repro.experiments.fig1_migration_cost import SESSION_LEVELS, run_fig1
from repro.experiments.report import format_table, paper_vs_measured


def test_fig1_migration_cost(benchmark):
    traces = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    rows = []
    for sessions in SESSION_LEVELS:
        trace = traces[sessions]
        rows.append(
            {
                "sessions": sessions,
                "migration_s": round(trace.migration_seconds, 1),
                "peak_dWatt_pct": round(trace.peak_power_delta(), 1),
                "peak_dRT_pct": round(trace.peak_rt_delta(), 0),
            }
        )
    text = format_table(rows, title="Fig. 1: live-migration cost by session count")
    text += "\n\n" + paper_vs_measured(
        [
            (
                "power delta grows with load (paper: ~5-20%)",
                "monotone",
                "monotone"
                if rows[0]["peak_dWatt_pct"] <= rows[-1]["peak_dWatt_pct"]
                else "NOT monotone",
            ),
            (
                "RT delta grows with load (paper: ~50-300%)",
                "monotone",
                "monotone"
                if rows[0]["peak_dRT_pct"] <= rows[-1]["peak_dRT_pct"]
                else "NOT monotone",
            ),
        ]
    )
    emit("fig1_migration_cost", text)

    assert rows[0]["peak_dWatt_pct"] <= rows[-1]["peak_dWatt_pct"]
    assert rows[0]["peak_dRT_pct"] <= rows[-1]["peak_dRT_pct"]
    assert all(5.0 <= row["peak_dWatt_pct"] <= 25.0 for row in rows)
