"""Micro-benchmarks for the adaptation-search hot path.

Times (a) the naive and self-aware A* searches, with the incremental
evaluation engine on and off, and (b) raw solver throughput — full
:meth:`LqnSolver.solve` calls vs. incremental child evaluations via
:meth:`LqnSolver.update_state` — at the paper's three system sizes
(2 apps / 4 hosts, 3 / 6, 4 / 8; Table I).

``scripts/run_benchmarks.py`` drives this module and writes
``BENCH_search.json`` at the repository root; see DESIGN.md's
"Performance architecture" section for how to read the file.

Methodology: every search starts from the consolidated t=0
configuration and plans toward a high-load workload vector (45+ req/s
per app), which forces a real adaptation search (dozens to thousands
of expansions) instead of the "already ideal" early return.  The ideal
(`perf_pwr.optimize`) is warmed outside the timed region — it is shared
state across controllers in production, not part of one search's cost.
Each scenario runs ``runs`` times with slightly different workloads so
no run is a pure cache replay; both wall-clock and process-CPU times
are recorded (process time is steadier on busy machines).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Mapping, Optional

from repro.core.config import Configuration
from repro.core.search import AdaptationSearch, SearchSettings
from repro.perfmodel.solver import LqnSolver
from repro.testbed.scenarios import (
    _global_perf_pwr,
    initial_configuration,
    make_testbed,
)

# The harness measures whatever ``repro`` package is on sys.path — it
# is also pointed at pre-incremental-engine checkouts to (re)record the
# baseline — so feature-gate the knobs that did not exist back then.
_SETTINGS_FIELDS = {
    field.name for field in dataclasses.fields(SearchSettings)
}

#: The paper's scenario sizes (app count -> hosts is fixed by Table I).
SYSTEM_SIZES = (2, 3, 4)

#: Baseline per-app demand (req/s) for the benchmark searches; run ``r``
#: probes ``HIGH_RATE + 5*app_index + r`` so runs are distinct.
HIGH_RATE = 45.0

#: Above 4 apps the ``HIGH_RATE`` vector saturates the cluster: the
#: perf-pwr-seeded plan is accepted with zero expansions and the
#: benchmark would time an early return.  Large scenarios probe a
#: mid-band vector instead, which keeps every run a real multi-round
#: search.  (The recorded baselines only cover sizes 2-4, so the
#: historical formula is frozen for those.)
LARGE_RATE = 18.0
LARGE_STEP = 2.5


def _workloads(names: list[str], run: int) -> dict[str, float]:
    if len(names) <= 4:
        base, step = HIGH_RATE, 5.0
    else:
        base, step = LARGE_RATE, LARGE_STEP
    return {
        name: base + step * index + run
        for index, name in enumerate(names)
    }


def bench_search(
    app_count: int,
    self_aware: bool,
    incremental: bool,
    runs: int = 5,
    window: float = 300.0,
    parallel_workers: Optional[int] = None,
    array_core: Optional[bool] = None,
    strategy: Optional[str] = None,
    deadline_seconds: Optional[float] = None,
) -> dict:
    """Mean/min time of one adaptation search at one system size.

    ``parallel_workers`` routes expansion rounds through the batched
    evaluation stage (DESIGN.md §11); outcomes are bit-identical to
    the serial path, so the column measures pure evaluation speed.
    ``array_core`` pins the array-native expansion core (DESIGN.md §13)
    on or off; ``None`` keeps the tree's default.  On checkouts that
    predate a knob the request is silently dropped — those trees only
    have the legacy path anyway.

    ``strategy`` pins the search backend (DESIGN.md §14): ``"astar"``
    to shield the measurement from the ``MISTRAL_SEARCH_STRATEGY``
    environment, or a walker name to time its anytime behavior —
    optionally under ``deadline_seconds``, in which case the row also
    tallies watchdog aborts and the incumbent utility the walker held
    when the deadline hit.
    """
    testbed = make_testbed(app_count, seed=0)
    settings_kwargs = {"self_aware": self_aware}
    if not self_aware:
        # The naive variant has no self-imposed stopping rule; cap its
        # expansions the same way scenarios.build_mistral does so the
        # benchmark measures cost-per-search, not the cap-free blowup.
        settings_kwargs["max_expansions"] = 2500
    if "incremental" in _SETTINGS_FIELDS:
        settings_kwargs["incremental"] = incremental
    if parallel_workers is not None:
        if "parallel_workers" not in _SETTINGS_FIELDS:
            raise ValueError(
                "this checkout predates the parallel evaluation stage"
            )
        settings_kwargs["parallel_workers"] = parallel_workers
    if array_core is not None and "array_core" in _SETTINGS_FIELDS:
        settings_kwargs["array_core"] = array_core
    if strategy is not None:
        if "strategy" not in _SETTINGS_FIELDS:
            raise ValueError(
                "this checkout predates pluggable search strategies"
            )
        settings_kwargs["strategy"] = strategy
    if deadline_seconds is not None and "deadline_seconds" in _SETTINGS_FIELDS:
        settings_kwargs["deadline_seconds"] = deadline_seconds
    search = AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=SearchSettings(**settings_kwargs),
    )
    names = [app.name for app in testbed.applications]
    start = initial_configuration(testbed)
    wall: list[float] = []
    cpu: list[float] = []
    utilities: list[float] = []
    expansions = 0
    evaluations = 0
    deadline_aborts = 0
    for run in range(runs):
        workloads = _workloads(names, run)
        search.perf_pwr.optimize(workloads)  # warm the shared ideal
        eval_before = testbed.estimator.evaluations
        wall_0 = time.perf_counter()
        cpu_0 = time.process_time()
        outcome = search.search(start, workloads, window)
        cpu.append(time.process_time() - cpu_0)
        wall.append(time.perf_counter() - wall_0)
        expansions += outcome.expansions
        evaluations += testbed.estimator.evaluations - eval_before
        # float() drops the array-core's numpy scalar so the row stays
        # JSON-serializable.
        utilities.append(float(outcome.predicted_utility))
        if getattr(outcome, "deadline_aborted", False):
            deadline_aborts += 1
    if hasattr(search, "close_executor"):
        search.close_executor()
    return {
        "app_count": app_count,
        "host_count": len(testbed.host_ids),
        "self_aware": self_aware,
        "incremental": incremental,
        "parallel_workers": parallel_workers,
        "array_core": array_core,
        "strategy": strategy,
        "deadline_seconds": deadline_seconds,
        "runs": runs,
        "mean_search_seconds": sum(wall) / runs,
        "min_search_seconds": min(wall),
        "mean_cpu_seconds": sum(cpu) / runs,
        "mean_predicted_utility": sum(utilities) / runs,
        "deadline_aborts": deadline_aborts,
        "total_expansions": expansions,
        "total_estimator_evaluations": evaluations,
        "incremental_evaluations": getattr(
            testbed.estimator, "incremental_evaluations", 0
        ),
    }


def bench_solver(app_count: int, seconds: float = 1.0) -> dict:
    """Full-solve vs. incremental child-evaluation solver throughput.

    The incremental loop mimics the search's inner step: from one
    parent solve state, evaluate a stream of one-VM cap changes via
    :meth:`LqnSolver.update_state`.
    """
    testbed = make_testbed(app_count, seed=0)
    solver: LqnSolver = testbed.estimator.solver
    names = [app.name for app in testbed.applications]
    workloads = _workloads(names, 0)
    configuration = initial_configuration(testbed)

    def child_of(base: Configuration, index: int) -> tuple[Configuration, str]:
        vm_ids = base.placed_vm_ids()
        vm_id = vm_ids[index % len(vm_ids)]
        placement = base.placement_of(vm_id)
        cap = 0.3 if placement.cpu_cap != 0.3 else 0.4
        return base.replace(vm_id, placement.with_cap(cap)), vm_id

    # Full solves.
    full_calls = 0
    deadline = time.perf_counter() + seconds
    cpu_0 = time.process_time()
    while time.perf_counter() < deadline:
        child, _ = child_of(configuration, full_calls)
        solver.solve(child, workloads)
        full_calls += 1
    full_cpu = time.process_time() - cpu_0

    # Incremental child evaluations off one parent state (absent on
    # pre-incremental-engine checkouts the baseline is measured from).
    incremental_rate: Optional[float] = None
    if hasattr(solver, "solve_state"):
        state = solver.solve_state(configuration, workloads)
        incremental_calls = 0
        deadline = time.perf_counter() + seconds
        cpu_0 = time.process_time()
        while time.perf_counter() < deadline:
            child, vm_id = child_of(configuration, incremental_calls)
            solver.update_state(state, child, workloads, (vm_id,))
            incremental_calls += 1
        incremental_cpu = time.process_time() - cpu_0
        if incremental_cpu > 0:
            incremental_rate = incremental_calls / incremental_cpu

    return {
        "app_count": app_count,
        "host_count": len(testbed.host_ids),
        "full_solves_per_cpu_second": (
            full_calls / full_cpu if full_cpu > 0 else None
        ),
        "incremental_evals_per_cpu_second": incremental_rate,
    }


def capture_metrics(app_count: int = 2, runs: int = 2) -> Optional[dict]:
    """Telemetry snapshot of an instrumented, *untimed* search pass.

    Runs on a fresh testbed/search — reusing the timed benchmark's
    objects would replay warm caches and inflate the hit ratios — and
    with telemetry enabled, which the timed passes never are (their
    numbers must stay comparable to uninstrumented baselines).  Returns
    ``None`` on checkouts that predate ``repro.telemetry``.
    """
    try:
        from repro.telemetry import runtime as telemetry
    except ImportError:  # pre-telemetry baseline checkout
        return None
    testbed = make_testbed(app_count, seed=0)
    settings_kwargs: dict = {"self_aware": True}
    if "incremental" in _SETTINGS_FIELDS:
        settings_kwargs["incremental"] = True
    if "strategy" in _SETTINGS_FIELDS:
        # The captured ratios (prune rate, cache hits) describe the A*
        # loop; shield them from MISTRAL_SEARCH_STRATEGY environments.
        settings_kwargs["strategy"] = "astar"
    search = AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=SearchSettings(**settings_kwargs),
    )
    names = [app.name for app in testbed.applications]
    start = initial_configuration(testbed)
    telemetry.enable()  # in-memory sink; events are discarded below
    try:
        for run in range(runs):
            workloads = _workloads(names, run)
            search.perf_pwr.optimize(workloads)
            search.search(start, workloads, 300.0)
        snapshot = telemetry.registry.snapshot()
    finally:
        telemetry.disable()

    counters = snapshot["counters"]
    caches = snapshot["caches"]

    def hit_ratio(name: str) -> Optional[float]:
        stats = caches.get(name)
        if not stats:
            return None
        total = stats["hits"] + stats["misses"]
        return stats["hits"] / total if total else None

    generated = counters.get("search.children_generated", 0)
    pruned = counters.get("search.children_pruned", 0)
    evaluations = counters.get("estimator.evaluations", 0)
    return {
        "app_count": app_count,
        "host_count": len(testbed.host_ids),
        "runs": runs,
        "derived": {
            "prune_rate": (
                pruned / (generated + pruned) if generated + pruned else None
            ),
            "estimator_cache_hit_ratio": hit_ratio("estimator.steady"),
            "perf_pwr_quality_hit_ratio": hit_ratio("perf_pwr.quality"),
            "incremental_evaluation_share": (
                counters.get("estimator.incremental_evaluations", 0)
                / evaluations
                if evaluations
                else None
            ),
        },
        "snapshot": snapshot,
    }


def run_suite(
    sizes: tuple[int, ...] = SYSTEM_SIZES,
    runs: int = 5,
    incremental_only: bool = False,
    workers: Optional[int] = None,
    metrics_size: Optional[int] = None,
    strategy: Optional[str] = None,
    strategy_deadline: Optional[float] = None,
) -> dict:
    """The full benchmark payload: searches, solver throughput, and an
    instrumented metrics capture.

    ``incremental_only`` skips the (slower) full-evaluation search
    variants — useful for a quick look at the current numbers.
    ``workers`` adds a ``self_aware_parallel`` column per scenario —
    measured back to back with the serial ``self_aware`` column so the
    two are comparable within one run of the suite.  On trees with the
    array-native core a ``self_aware_scalar`` column (array core off,
    no workers — the legacy object-at-a-time round) rides along as the
    reference :func:`summarize_parallel` divides by.  ``metrics_size``
    picks the scenario the instrumented telemetry pass runs at
    (default: the smallest benchmarked size).

    ``strategy`` adds one anytime-walker column per scenario (labelled
    by the strategy name, with a ``_deadline`` suffix when
    ``strategy_deadline`` caps the wall clock) so the recorded file
    tracks the walkers' time/quality next to the exact searches.
    """
    has_array_core = "array_core" in _SETTINGS_FIELDS
    searches: dict[str, dict] = {}
    for app_count in sizes:
        scenario: dict[str, dict] = {}
        for self_aware in (False, True):
            label = "self_aware" if self_aware else "naive"
            scenario[label] = bench_search(
                app_count, self_aware, incremental=True, runs=runs
            )
            if self_aware and has_array_core:
                scenario["self_aware_scalar"] = bench_search(
                    app_count,
                    self_aware,
                    incremental=True,
                    runs=runs,
                    array_core=False,
                )
            if self_aware and workers is not None:
                scenario["self_aware_parallel"] = bench_search(
                    app_count,
                    self_aware,
                    incremental=True,
                    runs=runs,
                    parallel_workers=workers,
                )
            if not incremental_only:
                scenario[f"{label}_full_eval"] = bench_search(
                    app_count, self_aware, incremental=False, runs=runs
                )
        if strategy is not None:
            column = (
                strategy
                if strategy_deadline is None
                else f"{strategy}_deadline"
            )
            scenario[column] = bench_search(
                app_count,
                self_aware=True,
                incremental=True,
                runs=runs,
                strategy=strategy,
                deadline_seconds=strategy_deadline,
            )
        searches[f"apps-{app_count}"] = scenario
    solver = {
        f"apps-{app_count}": bench_solver(app_count) for app_count in sizes
    }
    return {
        "search": searches,
        "solver": solver,
        "metrics": capture_metrics(
            app_count=metrics_size if metrics_size is not None else min(sizes)
        ),
    }


def summarize_parallel(
    search: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> dict:
    """Scalar / parallel mean-search-seconds ratio per scenario.

    The numerator is the ``self_aware_scalar`` column (legacy
    object-at-a-time rounds, no workers) when present, else the plain
    ``self_aware`` column; the denominator is ``self_aware_parallel``
    (array-native rounds dispatched to the worker pool).  Both come
    from the same suite run (same machine state, measured back to
    back), so the ratio is the evaluation stage's speedup on identical
    work — the searches themselves are bit-identical.
    """
    speedups: dict[str, Optional[float]] = {}
    for scenario, variants in search.items():
        reference = variants.get(
            "self_aware_scalar", variants.get("self_aware", {})
        ).get("mean_search_seconds")
        parallel = variants.get("self_aware_parallel", {}).get(
            "mean_search_seconds"
        )
        speedups[scenario] = (
            (reference / parallel) if reference and parallel else None
        )
    return speedups


def summarize_speedup(
    current: Mapping[str, Mapping[str, Mapping[str, float]]],
    baseline: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> dict:
    """Per-scenario baseline/current ratios of mean search seconds."""
    speedups: dict[str, dict[str, Optional[float]]] = {}
    for scenario, variants in current.items():
        base_scenario = baseline.get(scenario, {})
        entry: dict[str, Optional[float]] = {}
        for label in ("naive", "self_aware"):
            now = variants.get(label, {}).get("mean_search_seconds")
            then = base_scenario.get(label, {}).get("mean_search_seconds")
            entry[label] = (then / now) if now and then else None
        speedups[scenario] = entry
    return speedups
