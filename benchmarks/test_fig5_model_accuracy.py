"""Bench: Fig. 5 — performance/power model accuracy."""

from conftest import emit

from repro.experiments.fig5_model_accuracy import run_fig5
from repro.experiments.report import paper_vs_measured


def test_fig5_model_accuracy(benchmark):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    text = paper_vs_measured(
        [
            ("response-time error", "~5%", f"{100 * result.rt_error():.1f}%"),
            ("utilization error", "~5%", f"{100 * result.util_error():.1f}%"),
            ("power error", "~5%", f"{100 * result.power_error():.1f}%"),
        ],
        title="Fig. 5: model accuracy over the flash-crowd window",
    )
    emit("fig5_model_accuracy", text)

    assert result.rt_error() < 0.20
    assert result.util_error() < 0.10
    assert result.power_error() < 0.10
