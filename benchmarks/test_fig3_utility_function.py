"""Bench: Fig. 3 — the performance-utility reward/penalty functions."""

from conftest import emit

from repro.experiments.fig3_utility_function import crossover_checks, run_fig3
from repro.experiments.report import format_table


def test_fig3_utility_function(benchmark):
    rows = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    checks = crossover_checks(rows)

    text = format_table(
        rows[:: max(1, len(rows) // 11)],
        title="Fig. 3: reward/penalty vs request rate",
    )
    text += "\nchecks: " + ", ".join(
        f"{name}={value}" for name, value in checks.items()
    )
    emit("fig3_utility_function", text)

    assert all(checks.values()), checks
