#!/usr/bin/env python
"""CI perf-regression gate for the adaptation-search hot path.

Usage::

    python scripts/check_perf.py                    # measure live, gate
    python scripts/check_perf.py --input meas.json  # gate a saved payload
    python scripts/check_perf.py --record meas.json # save the measurement
    python scripts/check_perf.py --print-tolerances # emit a fresh
                                                    # PERF_TOLERANCES dict

Measures the perf-smoke scenarios (self-aware incremental searches at
the small system sizes) and compares the numbers against the recorded
tolerances in ``benchmarks/perf/baseline_data.py`` (``PERF_TOLERANCES``):

- **counters** (``total_expansions``, ``total_estimator_evaluations``,
  per-phase ``calls``) are deterministic for a fixed scenario and must
  match exactly — any drift means the search explored a different tree;
- **CPU seconds** (scenario ``mean_cpu_seconds`` and per-phase ``cpu``
  from the ``profile.phases`` events) may grow up to ``cpu_ratio``
  times the recorded value.  Process-CPU time is gated instead of
  wall-clock because it is steadier on busy machines; phases whose
  recorded cost sits below ``min_gate_cpu_seconds`` are reported but
  not gated (too close to timer noise).

Exit status is non-zero when any gated check fails.  Absolute seconds
are machine-specific: on hardware other than the recording machine,
loosen the timing gate with ``--cpu-ratio`` (CI does) or re-record the
tolerances with ``--print-tolerances`` — the counter checks stay exact
everywhere.
"""

from __future__ import annotations

import argparse
import json
import pprint
import sys
import tempfile
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Phase-profile trace events are versioned with the trace schema.
KNOWN_SCHEMA_VERSIONS = {1}


def _bootstrap() -> None:
    """Put the tree's ``src`` and the perf harness on ``sys.path``."""
    for path in (
        str(REPO_ROOT / "src"),
        str(REPO_ROOT / "benchmarks" / "perf"),
    ):
        if path not in sys.path:
            sys.path.insert(0, path)


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------


def _phase_totals(trace_path: Path) -> dict[str, dict]:
    """Aggregate the ``profile.phases`` events of one trace file."""
    totals: dict[str, dict] = defaultdict(
        lambda: {"wall": 0.0, "cpu": 0.0, "calls": 0}
    )
    with open(trace_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if (
                record.get("kind") != "event"
                or record.get("name") != "profile.phases"
            ):
                continue
            for phase, entry in (
                record.get("attrs", {}).get("phases", {}).items()
            ):
                row = totals[phase]
                row["wall"] += entry.get("wall", 0.0)
                row["cpu"] += entry.get("cpu", 0.0)
                row["calls"] += entry.get("calls", 0)
    return dict(totals)


def measure(sizes: tuple[int, ...], runs: int) -> dict:
    """The gate's input payload, measured live from the current tree.

    Two passes per scenario: a timed pass with telemetry off (the
    numbers the CPU gate reads must not carry instrumentation cost)
    and an instrumented pass with telemetry routed to a scratch JSONL
    file, from which the per-phase profile is aggregated.
    """
    _bootstrap()
    import search_harness

    from repro.telemetry import runtime as telemetry

    # The gate's counters describe the exact A* tree; pin the backend so
    # a MISTRAL_SEARCH_STRATEGY environment (e.g. the walker CI leg)
    # cannot swap the search out from under the recorded tolerances.
    search: dict[str, dict] = {}
    for app_count in sizes:
        row = search_harness.bench_search(
            app_count,
            self_aware=True,
            incremental=True,
            runs=runs,
            strategy="astar",
        )
        search[f"apps-{app_count}"] = {
            "mean_search_seconds": row["mean_search_seconds"],
            "mean_cpu_seconds": row["mean_cpu_seconds"],
            "total_expansions": row["total_expansions"],
            "total_estimator_evaluations": row[
                "total_estimator_evaluations"
            ],
        }

    with tempfile.TemporaryDirectory(prefix="check_perf_") as scratch:
        trace_path = Path(scratch) / "phases.jsonl"
        telemetry.enable(jsonl_path=str(trace_path))
        try:
            for app_count in sizes:
                search_harness.bench_search(
                    app_count,
                    self_aware=True,
                    incremental=True,
                    runs=runs,
                    strategy="astar",
                )
            telemetry.flush()
        finally:
            telemetry.disable()
        phases = _phase_totals(trace_path)

    return {
        "meta": {"sizes": list(sizes), "runs": runs},
        "search": search,
        "phases": phases,
    }


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


def compare(
    measurement: dict,
    tolerances: dict,
    cpu_ratio: float | None = None,
) -> list[dict]:
    """Every gate check as a row: ``{check, recorded, measured, limit,
    gated, ok}``.  Pure function of its inputs so tests can feed it
    doctored payloads."""
    ratio = cpu_ratio if cpu_ratio is not None else tolerances["cpu_ratio"]
    floor = tolerances["min_gate_cpu_seconds"]
    checks: list[dict] = []

    def check(name, recorded, measured, limit=None, gated=True, ok=None):
        if ok is None:
            ok = measured is not None and (
                limit is None or measured <= limit
            )
        checks.append(
            {
                "check": name,
                "recorded": recorded,
                "measured": measured,
                "limit": limit,
                "gated": gated,
                "ok": bool(ok) or not gated,
            }
        )

    for scenario, recorded in sorted(tolerances["search"].items()):
        row = measurement.get("search", {}).get(scenario)
        if row is None:
            check(f"{scenario}: present", True, None, ok=False)
            continue
        for counter in (
            "total_expansions",
            "total_estimator_evaluations",
        ):
            check(
                f"{scenario}: {counter}",
                recorded[counter],
                row.get(counter),
                ok=row.get(counter) == recorded[counter],
            )
        gated = recorded["mean_cpu_seconds"] >= floor
        check(
            f"{scenario}: mean_cpu_seconds",
            recorded["mean_cpu_seconds"],
            row.get("mean_cpu_seconds"),
            limit=ratio * recorded["mean_cpu_seconds"],
            gated=gated,
        )

    for phase, recorded in sorted(tolerances["phases"].items()):
        entry = measurement.get("phases", {}).get(phase)
        if entry is None:
            check(f"phase {phase}: present", True, None, ok=False)
            continue
        check(
            f"phase {phase}: calls",
            recorded["calls"],
            entry.get("calls"),
            ok=entry.get("calls") == recorded["calls"],
        )
        gated = recorded["cpu"] >= floor
        check(
            f"phase {phase}: cpu_seconds",
            recorded["cpu"],
            entry.get("cpu"),
            limit=ratio * recorded["cpu"],
            gated=gated,
        )

    return checks


def render(checks: list[dict]) -> str:
    lines = [
        f"{'check':<44} {'recorded':>12} {'measured':>12} "
        f"{'limit':>12}  status"
    ]

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6f}"
        return str(value)

    for row in checks:
        if not row["gated"]:
            status = "SKIP (below gate floor)"
        elif row["ok"]:
            status = "ok"
        else:
            status = "FAIL"
        lines.append(
            f"{row['check']:<44} {fmt(row['recorded']):>12} "
            f"{fmt(row['measured']):>12} {fmt(row['limit']):>12}  {status}"
        )
    failed = [row for row in checks if row["gated"] and not row["ok"]]
    lines.append(
        f"{len(checks)} checks, {len(failed)} failed"
        + (
            ""
            if not failed
            else " — perf regression (or stale tolerances: re-record "
            "with --print-tolerances on the recording machine)"
        )
    )
    return "\n".join(lines)


def _tolerances_from(measurement: dict, source: str) -> dict:
    """A ready-to-record ``PERF_TOLERANCES`` dict for ``baseline_data``."""
    return {
        "source": source,
        "note": (
            "recorded by scripts/check_perf.py --print-tolerances; "
            "counters are exact, CPU seconds are gated at cpu_ratio "
            "times these values (machine-specific — re-record on new "
            "hardware, or loosen with --cpu-ratio)"
        ),
        "sizes": measurement["meta"]["sizes"],
        "runs": measurement["meta"]["runs"],
        "cpu_ratio": 1.75,
        "min_gate_cpu_seconds": 0.005,
        "search": measurement["search"],
        "phases": measurement["phases"],
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--input",
        type=Path,
        default=None,
        help="gate a saved measurement payload instead of measuring live",
    )
    parser.add_argument(
        "--record",
        type=Path,
        default=None,
        help="also write the measurement payload here (JSON)",
    )
    parser.add_argument(
        "--print-tolerances",
        action="store_true",
        help="measure and print a fresh PERF_TOLERANCES dict for "
        "benchmarks/perf/baseline_data.py instead of gating",
    )
    parser.add_argument(
        "--cpu-ratio",
        type=float,
        default=None,
        help="override the recorded cpu_ratio gate (use a generous "
        "value on machines other than the recording one)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the check rows as JSON"
    )
    args = parser.parse_args(argv)

    _bootstrap()
    import baseline_data

    if args.input is not None:
        measurement = json.loads(args.input.read_text())
    else:
        tolerances = getattr(baseline_data, "PERF_TOLERANCES", None)
        sizes = tuple(
            (tolerances or {}).get("sizes", [2, 3])
        )
        runs = (tolerances or {}).get("runs", 3)
        measurement = measure(sizes, runs)

    if args.record is not None:
        args.record.write_text(json.dumps(measurement, indent=2) + "\n")
        print(f"wrote {args.record}", file=sys.stderr)

    if args.print_tolerances:
        print(
            "PERF_TOLERANCES = "
            + pprint.pformat(
                _tolerances_from(measurement, source="live measurement"),
                width=72,
                sort_dicts=False,
            )
        )
        return 0

    tolerances = getattr(baseline_data, "PERF_TOLERANCES", None)
    if tolerances is None:
        print(
            "error: benchmarks/perf/baseline_data.py has no "
            "PERF_TOLERANCES — record one with --print-tolerances",
            file=sys.stderr,
        )
        return 1

    checks = compare(measurement, tolerances, cpu_ratio=args.cpu_ratio)
    if args.json:
        print(json.dumps(checks, indent=2))
    else:
        print(render(checks))
    if any(row["gated"] and not row["ok"] for row in checks):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
