#!/usr/bin/env python
"""Run the search/solver perf harness and write ``BENCH_search.json``.

Usage::

    python scripts/run_benchmarks.py                  # measure, write JSON
    python scripts/run_benchmarks.py --runs 3 --sizes 2 3
    python scripts/run_benchmarks.py --baseline-src /path/to/old/src
    python scripts/run_benchmarks.py --workers 4 --sizes 2 3 4 6

The output records the current tree's numbers next to the pre-change
baseline (either the numbers recorded in
``benchmarks/perf/baseline_data.py`` or a live measurement of another
checkout via ``--baseline-src``) and the per-scenario speedups, so the
performance trajectory travels with the repository.  See DESIGN.md's
"Performance architecture" section for how to read the file.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _bootstrap(src: Path) -> None:
    """Put one tree's ``src`` (and the harness) on sys.path, clearing
    any previously imported ``repro`` modules."""
    for name in [name for name in sys.modules if name.startswith("repro")]:
        del sys.modules[name]
    sys.path[:] = [
        entry
        for entry in sys.path
        if not entry.endswith("/src") or Path(entry) == src
    ]
    for path in (str(src), str(REPO_ROOT / "benchmarks" / "perf")):
        if path in sys.path:
            sys.path.remove(path)
        sys.path.insert(0, path)


def _measure(src: Path, sizes: tuple[int, ...], runs: int,
             incremental_only: bool, workers: int | None = None,
             metrics_size: int | None = None,
             strategy: str | None = None,
             strategy_deadline: float | None = None) -> dict:
    _bootstrap(src)
    for name in [
        name for name in sys.modules if name.startswith("search_harness")
    ]:
        del sys.modules[name]
    import search_harness

    kwargs = {}
    if workers is not None:
        # Baseline checkouts predate the parallel column; only the
        # current tree is asked for it.
        kwargs["workers"] = workers
    if metrics_size is not None:
        kwargs["metrics_size"] = metrics_size
    if strategy is not None:
        # Likewise the pluggable-strategy column: never asked of a
        # --baseline-src checkout.
        kwargs["strategy"] = strategy
        kwargs["strategy_deadline"] = strategy_deadline
    return search_harness.run_suite(
        sizes=sizes, runs=runs, incremental_only=incremental_only, **kwargs
    )


def _git_dirty() -> str:
    """Porcelain status of the tree, "" when clean or git is absent."""
    try:
        return subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return ""


def _write_parallel_block(payload: dict, workers: int) -> None:
    """Record the serial-vs-parallel table as ``results/parallel_search.txt``
    so ``scripts/build_experiments_md.py`` can fold it into EXPERIMENTS.md."""
    meta = payload["meta"]
    lines = [
        "Evaluation stage — self-aware search, scalar rounds vs "
        f"array rounds with --workers {workers}",
        f"commit {meta['commit']}, python {meta['python']}, "
        f"{meta['runs_per_scenario']} runs/scenario "
        "(mean_search_seconds, wall)",
        "",
        f"{'scenario':<10} {'scalar [s]':>11} {'parallel [s]':>13} "
        f"{'speedup':>8}",
    ]
    for scenario, ratio in payload["parallel_speedup"].items():
        if ratio is None:
            continue
        entry = payload["current"]["search"][scenario]
        reference = entry.get("self_aware_scalar", entry["self_aware"])[
            "mean_search_seconds"
        ]
        parallel = entry["self_aware_parallel"]["mean_search_seconds"]
        lines.append(
            f"{scenario:<10} {reference:>11.4f} {parallel:>13.4f} "
            f"{ratio:>7.2f}x"
        )
    lines += [
        "",
        "Outcomes are bit-identical across columns (DESIGN.md §11/§13); "
        "the ratio is pure wall-clock.",
        "The scalar column runs the legacy object-at-a-time rounds "
        "(MISTRAL_ARRAY_CORE=0, no workers);",
        "the parallel column runs the array-native rounds dispatched "
        "to the worker pool.",
        "Small scenarios amortize the vectorized stage less; "
        "single-core machines resolve the pool to the inline path.",
    ]
    results = REPO_ROOT / "results"
    results.mkdir(exist_ok=True)
    (results / "parallel_search.txt").write_text("\n".join(lines) + "\n")


def _history_row(payload: dict) -> dict:
    """One flat summary line per suite run for ``BENCH_history.jsonl``.

    Keeps just enough to plot the performance trajectory over time —
    per-scenario mean search seconds and the speedup-vs-baseline ratios
    — without the full payload's nested detail.
    """
    meta = payload["meta"]
    history_labels = ("naive", "self_aware", "self_aware_parallel")
    timings = {
        scenario: {
            label: entry[label]["mean_search_seconds"]
            for label in entry
            # Strategy columns (e.g. ``mcts_deadline``) are tagged by
            # their own label so trajectory rows separate per backend.
            if label in history_labels or entry[label].get("strategy")
        }
        for scenario, entry in payload["current"]["search"].items()
    }
    return {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": meta["commit"],
        "python": meta["python"],
        "machine": meta["machine"],
        "runs_per_scenario": meta["runs_per_scenario"],
        "sizes": meta["sizes"],
        "parallel_workers": meta["parallel_workers"],
        "search_strategy": meta.get("search_strategy"),
        "strategy_deadline_seconds": meta.get("strategy_deadline_seconds"),
        "mean_search_seconds": timings,
        "speedup_vs_baseline": payload["speedup_vs_baseline"],
        "parallel_speedup": payload.get("parallel_speedup"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_search.json",
        help="where to write the results (default: repo root)",
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="searches per scenario"
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[2, 3, 4],
        help="scenario sizes (app counts) to benchmark",
    )
    parser.add_argument(
        "--baseline-src",
        type=Path,
        default=None,
        help="src/ of a pre-change checkout: measure the baseline live "
        "instead of using the recorded numbers",
    )
    parser.add_argument(
        "--skip-full-eval",
        action="store_true",
        help="skip the search variants with the incremental engine off",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="add a self_aware_parallel column measured with this many "
        "parallel evaluation workers (bit-identical outcomes; the "
        "column times the batched evaluation stage)",
    )
    parser.add_argument(
        "--strategy",
        type=str,
        default=None,
        help="add a per-scenario column timing this pluggable search "
        "strategy (e.g. 'mcts'); measured only on the current tree",
    )
    parser.add_argument(
        "--strategy-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cap the --strategy column's searches with the anytime "
        "deadline watchdog; the column then also counts watchdog "
        "aborts and records the incumbent utility at the deadline",
    )
    parser.add_argument(
        "--metrics-size",
        type=int,
        default=None,
        help="app count the instrumented telemetry pass runs at "
        "(default: the smallest size in --sizes)",
    )
    parser.add_argument(
        "--append-history",
        nargs="?",
        type=Path,
        const=REPO_ROOT / "BENCH_history.jsonl",
        default=None,
        metavar="PATH",
        help="append one summary row (timestamp, commit, per-scenario "
        "mean seconds, speedups) to this JSONL history file "
        "(default path: BENCH_history.jsonl at the repo root)",
    )
    parser.add_argument(
        "--allow-dirty",
        action="store_true",
        help="permit recording from a tree with uncommitted changes "
        "(the commit stamp gains a -dirty suffix)",
    )
    args = parser.parse_args(argv)
    if args.runs < 1:
        parser.error("--runs must be >= 1")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.metrics_size is not None and args.metrics_size not in args.sizes:
        parser.error("--metrics-size must be one of --sizes")
    if args.strategy_deadline is not None and args.strategy is None:
        parser.error("--strategy-deadline requires --strategy")
    if args.strategy_deadline is not None and args.strategy_deadline <= 0:
        parser.error("--strategy-deadline must be positive")
    sizes = tuple(args.sizes)

    dirty = _git_dirty()
    if dirty and not args.allow_dirty:
        print(
            "refusing to record benchmarks from a dirty tree — the "
            "commit stamp would not identify what was measured.\n"
            "Commit or stash first, or pass --allow-dirty to record "
            "with a -dirty stamp.\nUncommitted changes:",
            file=sys.stderr,
        )
        print(dirty, file=sys.stderr)
        return 1

    print(f"measuring current tree ({REPO_ROOT / 'src'}) ...", flush=True)
    current = _measure(
        REPO_ROOT / "src", sizes, args.runs, args.skip_full_eval,
        workers=args.workers, metrics_size=args.metrics_size,
        strategy=args.strategy, strategy_deadline=args.strategy_deadline,
    )

    if args.baseline_src is not None:
        print(f"measuring baseline ({args.baseline_src}) ...", flush=True)
        baseline_payload = _measure(
            args.baseline_src.resolve(), sizes, args.runs, True
        )
        baseline = {
            "source": str(args.baseline_src),
            "note": "measured live from --baseline-src",
            **baseline_payload,
        }
    else:
        _bootstrap(REPO_ROOT / "src")
        import baseline_data

        baseline = baseline_data.BASELINE

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        if dirty:
            commit += "-dirty"
    except (OSError, subprocess.CalledProcessError):
        commit = "unknown"

    import search_harness

    payload = {
        "meta": {
            "commit": commit,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "runs_per_scenario": args.runs,
            "sizes": list(sizes),
            "parallel_workers": args.workers,
            "search_strategy": args.strategy,
            "strategy_deadline_seconds": args.strategy_deadline,
        },
        "baseline": baseline,
        "current": current,
        # Instrumented-pass telemetry (hit ratios, prune rate, delta
        # share) surfaced next to the timings; None when the measured
        # tree predates repro.telemetry.
        "metrics": current.pop("metrics", None),
        "speedup_vs_baseline": search_harness.summarize_speedup(
            current["search"], baseline["search"]
        ),
    }
    if args.workers is not None:
        payload["parallel_speedup"] = search_harness.summarize_parallel(
            current["search"]
        )
        # Only a canonical recording refreshes the curated results
        # block; probe runs writing elsewhere must not clobber it.
        if args.output.resolve() == REPO_ROOT / "BENCH_search.json":
            _write_parallel_block(payload, args.workers)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if args.append_history is not None:
        with open(args.append_history, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(_history_row(payload)) + "\n")
        print(f"appended history row to {args.append_history}")
    for scenario, entry in payload["speedup_vs_baseline"].items():
        printable = {
            label: (f"{ratio:.2f}x" if ratio else "n/a")
            for label, ratio in entry.items()
        }
        print(f"  {scenario}: {printable}")
    if args.workers is not None:
        print(f"parallel evaluation speedup (--workers {args.workers}):")
        for scenario, ratio in payload["parallel_speedup"].items():
            print(f"  {scenario}: {f'{ratio:.2f}x' if ratio else 'n/a'}")
    if args.strategy is not None:
        column = (
            args.strategy
            if args.strategy_deadline is None
            else f"{args.strategy}_deadline"
        )
        print(f"strategy column ({column}):")
        for scenario, entry in current["search"].items():
            row = entry.get(column)
            if row is None:
                continue
            print(
                f"  {scenario}: {row['mean_search_seconds']:.3f}s mean, "
                f"utility {row['mean_predicted_utility']:.1f}, "
                f"{row['deadline_aborts']}/{row['runs']} deadline aborts"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
