#!/usr/bin/env python
"""Roll a telemetry JSONL trace into human-readable tables.

Usage::

    python scripts/telemetry_report.py trace.jsonl
    python scripts/telemetry_report.py trace.jsonl --json   # machine-readable

Reads a trace written by ``repro.telemetry`` (see DESIGN.md §9) and
prints:

- one row per controller (from ``controller.decision`` spans):
  decisions, null decisions, expansions, decision seconds, search
  wall time, search watts;
- the search totals (from ``search.run`` events): expansions,
  generated/pruned children and the prune rate, candidate pushes,
  early returns;
- estimator/solver/optimizer efficiency (from the last
  ``metrics.snapshot`` event): cache hit ratios, delta vs. full
  solver evaluations;
- a ``checkpoint/watchdog`` section rolling up ``checkpoint.*``,
  ``watchdog.*``, and ``failover.*`` events (snapshot saves/restores,
  deadline aborts with their overshoot, controller crashes and warm
  restores) — omitted for traces without them;
- a per-span-name duration summary.

The reader refuses traces whose schema version it does not know —
regenerate the trace with a matching checkout instead of guessing at
field meanings.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

#: Schema versions this reader understands (must track
#: ``repro.telemetry.trace.SCHEMA_VERSION``).
KNOWN_SCHEMA_VERSIONS = {1}


class SchemaError(ValueError):
    """The trace's schema version is unknown to this reader."""


class TraceEvents(list):
    """A list of trace records plus the count of lines skipped as
    unparseable (``malformed_lines``) — a crash-truncated trace ends in
    a torn line, and the report must survive it, not die on it."""

    malformed_lines: int = 0


def read_trace(path: Path) -> TraceEvents:
    """Parse a JSONL trace, validating every line's schema version.

    Truncated or otherwise malformed lines (torn tail of a crashed
    run, disk-full artifacts) are skipped and counted on the returned
    list's ``malformed_lines`` — only an *unknown schema version* on a
    well-formed line raises, because that means every field's meaning
    is in doubt, not just one line's bytes.
    """
    events = TraceEvents()
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if not isinstance(event, dict):
                malformed += 1
                continue
            version = event.get("v")
            if version not in KNOWN_SCHEMA_VERSIONS:
                known = sorted(KNOWN_SCHEMA_VERSIONS)
                raise SchemaError(
                    f"{path}:{lineno}: telemetry schema version {version!r} "
                    f"is not supported by this reader (known: {known}). "
                    "Regenerate the trace with a matching checkout or "
                    "update scripts/telemetry_report.py."
                )
            events.append(event)
    events.malformed_lines = malformed
    return events


# ---------------------------------------------------------------------------
# rollups
# ---------------------------------------------------------------------------


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def controller_rollup(events: list[dict]) -> dict[str, dict]:
    """Per-controller decision table from ``controller.decision`` spans."""
    rows: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "span" or event.get("name") != "controller.decision":
            continue
        attrs = event.get("attrs", {})
        name = attrs.get("controller", "?")
        row = rows.setdefault(
            name,
            {
                "decisions": 0,
                "null_decisions": 0,
                "actions": 0,
                "expansions": [],
                "decision_seconds": [],
                "wall_seconds": [],
                "search_watts": [],
            },
        )
        row["decisions"] += 1
        if attrs.get("null"):
            row["null_decisions"] += 1
        row["actions"] += len(attrs.get("actions", ()))
        row["expansions"].append(attrs.get("expansions", 0))
        row["decision_seconds"].append(attrs.get("decision_seconds", 0.0))
        row["wall_seconds"].append(event.get("dur", 0.0))
        row["search_watts"].append(attrs.get("search_watts", 0.0))
    return {
        name: {
            "decisions": row["decisions"],
            "null_decisions": row["null_decisions"],
            "actions": row["actions"],
            "total_expansions": sum(row["expansions"]),
            "mean_expansions": _mean(row["expansions"]),
            "mean_decision_seconds": _mean(row["decision_seconds"]),
            "max_decision_seconds": max(row["decision_seconds"], default=0.0),
            "mean_wall_seconds": _mean(row["wall_seconds"]),
            "mean_search_watts": _mean(row["search_watts"]),
        }
        for name, row in sorted(rows.items())
    }


def search_rollup(events: list[dict]) -> dict:
    """Search totals from ``search.run`` events."""
    runs = [
        event["attrs"]
        for event in events
        if event.get("kind") == "event" and event.get("name") == "search.run"
    ]
    generated = sum(run.get("children_generated", 0) for run in runs)
    pruned = sum(run.get("children_pruned", 0) for run in runs)
    considered = generated + pruned
    return {
        "runs": len(runs),
        "early_returns": sum(1 for run in runs if run.get("early_return")),
        "expansions": sum(run.get("expansions", 0) for run in runs),
        "children_generated": generated,
        "children_pruned": pruned,
        "prune_rate": pruned / considered if considered else 0.0,
        "candidates": sum(run.get("candidates", 0) for run in runs),
        "pruning_activated": sum(
            1 for run in runs if run.get("pruning_activated")
        ),
        "mean_wall_seconds": _mean([run.get("dur", 0.0) for run in runs]),
        "mean_decision_seconds": _mean(
            [run.get("decision_seconds", 0.0) for run in runs]
        ),
    }


def _ratio(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def _ratio_or_zero(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def efficiency_rollup(events: list[dict]) -> dict:
    """Cache/solver efficiency from the last ``metrics.snapshot`` event."""
    snapshots = [
        event["attrs"]
        for event in events
        if event.get("kind") == "event"
        and event.get("name") == "metrics.snapshot"
    ]
    if not snapshots:
        return {}
    metrics = snapshots[-1].get("metrics", {})
    counters = metrics.get("counters", {})
    caches = metrics.get("caches", {})
    evaluations = counters.get("estimator.evaluations", 0)
    incremental = counters.get("estimator.incremental_evaluations", 0)
    full_solves = counters.get("solver.full_solves", 0)
    incr_solves = counters.get("solver.incremental_solves", 0)
    return {
        "cache_hit_ratios": {
            name: {
                "hits": stats.get("hits", 0),
                "misses": stats.get("misses", 0),
                "hit_ratio": _ratio(
                    stats.get("hits", 0), stats.get("misses", 0)
                ),
                "evictions": stats.get("evictions", 0),
            }
            for name, stats in sorted(caches.items())
        },
        "estimator": {
            "evaluations": evaluations,
            "incremental_evaluations": incremental,
            "incremental_share": (
                incremental / evaluations if evaluations else 0.0
            ),
            "memo_hits": counters.get("estimator.memo_hits", 0),
        },
        "solver": {
            "full_solves": full_solves,
            "incremental_solves": incr_solves,
            "delta_share": _ratio(incr_solves, full_solves),
            "tiers_resolved": counters.get("solver.tiers_resolved", 0),
        },
        "perf_pwr": {
            "optimizations": counters.get("perf_pwr.optimizations", 0),
            "memo_hits": counters.get("perf_pwr.memo_hits", 0),
        },
        "batch": {
            "batch_solves": counters.get("solver.batch_solves", 0),
            "batch_configs": counters.get("solver.batch_configs", 0),
            "configs_per_batch": _ratio_or_zero(
                counters.get("solver.batch_configs", 0),
                counters.get("solver.batch_solves", 0),
            ),
            "array_rounds": counters.get("solver.array_rounds", 0),
            "shm_rounds": counters.get("parallel.shm_rounds", 0),
            "shm_bytes": counters.get("parallel.shm_bytes", 0),
        },
        "counters": counters,
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
    }


def resilience_rollup(events: list[dict]) -> dict:
    """Fault/recovery behavior from ``fault.*`` / ``recovery.*`` /
    ``resilience.*`` events (empty dict for fault-free traces)."""
    fault_actions: dict[str, int] = defaultdict(int)
    crashes = 0
    sample_faults: dict[str, int] = defaultdict(int)
    retries = 0
    backoffs: list[float] = []
    plans_aborted = 0
    rollbacks = 0
    rollback_actions = 0
    rollback_skips = 0
    wasted_utility = 0.0
    degradations: list[dict] = []
    recoveries = 0
    replans = 0
    noop_decisions = 0
    worker_kills = 0
    worker_crashes = 0
    worker_respawns = 0
    shm_corruptions = 0
    shm_resyncs = 0
    solver_faults = 0
    strategy_stalls = 0
    strategy_failures = 0
    checkpoint_corruptions = 0
    checkpoint_quarantines = 0
    checkpoint_rollbacks = 0
    invariant_violations = 0
    for event in events:
        if event.get("kind") != "event":
            continue
        name = event.get("name", "")
        attrs = event.get("attrs", {})
        if name == "fault.action":
            fault_actions[attrs.get("mode", "?")] += 1
        elif name == "fault.host_crash":
            crashes += 1
        elif name == "fault.sample":
            sample_faults[attrs.get("mode", "?")] += 1
        elif name == "recovery.retry":
            retries += 1
            backoffs.append(attrs.get("backoff_seconds", 0.0))
        elif name == "recovery.plan_aborted":
            plans_aborted += 1
        elif name == "recovery.rollback":
            rollbacks += 1
            rollback_actions += attrs.get("actions", 0)
        elif name == "recovery.rollback_skipped":
            rollback_skips += 1
        elif name == "resilience.plan_waste":
            wasted_utility += attrs.get("wasted_utility", 0.0)
        elif name == "resilience.degraded":
            degradations.append(
                {
                    "controller": attrs.get("controller", "?"),
                    "level": attrs.get("level", "?"),
                    "cause": attrs.get("cause", "?"),
                    "t_sim": attrs.get("t_sim", 0.0),
                }
            )
        elif name == "resilience.recovered":
            recoveries += 1
        elif name == "resilience.replan":
            replans += 1
        elif name == "resilience.noop_decision":
            noop_decisions += 1
        elif name == "fault.worker.kill":
            worker_kills += 1
        elif name == "fault.worker.crash":
            worker_crashes += 1
        elif name == "fault.worker.respawn":
            worker_respawns += 1
        elif name == "fault.shm.corrupt":
            shm_corruptions += 1
        elif name == "parallel.shm_resync":
            shm_resyncs += 1
        elif name == "fault.solver.exception":
            solver_faults += 1
        elif name == "fault.strategy.stall":
            strategy_stalls += 1
        elif name == "search.strategy_failure":
            strategy_failures += 1
        elif name == "fault.checkpoint.corrupt":
            checkpoint_corruptions += 1
        elif name == "checkpoint.quarantine":
            checkpoint_quarantines += 1
        elif name == "checkpoint.rollback":
            checkpoint_rollbacks += 1
        elif name == "chaos.invariant_violation":
            invariant_violations += 1
    total_faults = (
        sum(fault_actions.values()) + crashes + sum(sample_faults.values())
    )
    executor_faults = (
        worker_kills
        + worker_crashes
        + worker_respawns
        + shm_corruptions
        + shm_resyncs
        + solver_faults
        + strategy_stalls
        + strategy_failures
        + checkpoint_corruptions
        + checkpoint_quarantines
        + checkpoint_rollbacks
        + invariant_violations
    )
    if (
        total_faults == 0
        and plans_aborted == 0
        and not degradations
        and executor_faults == 0
    ):
        return {}
    return {
        "faults": {
            "actions": dict(sorted(fault_actions.items())),
            "host_crashes": crashes,
            "samples": dict(sorted(sample_faults.items())),
            "total": total_faults,
        },
        "recovery": {
            "retries": retries,
            "mean_backoff_seconds": _mean(backoffs),
            "plans_aborted": plans_aborted,
            "rollbacks": rollbacks,
            "rollback_actions": rollback_actions,
            "rollback_skips": rollback_skips,
            "wasted_utility": wasted_utility,
        },
        "degradation": {
            "events": degradations,
            "recoveries": recoveries,
            "replans": replans,
            "noop_decisions": noop_decisions,
        },
        "executors": {
            "worker_kills": worker_kills,
            "worker_crashes": worker_crashes,
            "worker_respawns": worker_respawns,
            "shm_corruptions": shm_corruptions,
            "shm_resyncs": shm_resyncs,
            "solver_faults": solver_faults,
            "strategy_stalls": strategy_stalls,
            "strategy_failures": strategy_failures,
            "checkpoint_corruptions": checkpoint_corruptions,
            "checkpoint_quarantines": checkpoint_quarantines,
            "checkpoint_rollbacks": checkpoint_rollbacks,
            "invariant_violations": invariant_violations,
        },
    }


def checkpoint_rollup(events: list[dict]) -> dict:
    """Checkpoint/watchdog/failover behavior from ``checkpoint.*`` /
    ``watchdog.*`` / ``failover.*`` events (empty dict when none)."""
    saves = 0
    save_bytes: list[float] = []
    save_failures = 0
    restores = 0
    deadline_aborts: list[dict] = []
    search_aborts = 0
    crashes: list[dict] = []
    failover_restores: list[dict] = []
    failover_failures = 0
    cold_starts = 0
    samples_without_level2 = 0
    for event in events:
        if event.get("kind") != "event":
            continue
        name = event.get("name", "")
        attrs = event.get("attrs", {})
        if name == "checkpoint.save":
            saves += 1
            save_bytes.append(attrs.get("bytes", 0))
        elif name == "checkpoint.save_failed":
            save_failures += 1
        elif name == "checkpoint.restore":
            restores += 1
        elif name == "watchdog.deadline_abort":
            deadline_aborts.append(
                {
                    "deadline": attrs.get("deadline", 0.0),
                    "wall_seconds": attrs.get("wall_seconds", 0.0),
                    "expansions": attrs.get("expansions", 0),
                    "actions": attrs.get("actions", 0),
                }
            )
        elif name == "watchdog.search_aborted":
            search_aborts += 1
        elif name == "failover.controller_crash":
            crashes.append(
                {
                    "controller": attrs.get("controller", "?"),
                    "t_sim": attrs.get("t_sim", 0.0),
                    "down_until": attrs.get("down_until", 0.0),
                    "checkpoint_available": attrs.get(
                        "checkpoint_available", False
                    ),
                }
            )
        elif name == "failover.restored":
            failover_restores.append(
                {
                    "controller": attrs.get("controller", "?"),
                    "t_sim": attrs.get("t_sim", 0.0),
                    "clean": attrs.get("clean", True),
                    "drift": attrs.get("drift", 0),
                }
            )
        elif name == "failover.restore_failed":
            failover_failures += 1
        elif name == "failover.cold_start":
            cold_starts += 1
        elif name == "failover.samples_without_level2":
            samples_without_level2 += 1
    # The per-sample counter only reaches the trace via the metrics
    # snapshot; fold it in so the report works either way.
    for event in events:
        if (
            event.get("kind") == "event"
            and event.get("name") == "metrics.snapshot"
        ):
            counters = event.get("attrs", {}).get("metrics", {}).get(
                "counters", {}
            )
            samples_without_level2 = max(
                samples_without_level2,
                counters.get("failover.samples_without_level2", 0),
            )
    if not (
        saves
        or restores
        or save_failures
        or deadline_aborts
        or search_aborts
        or crashes
        or cold_starts
    ):
        return {}
    return {
        "checkpoint": {
            "saves": saves,
            "save_failures": save_failures,
            "restores": restores,
            "mean_bytes": _mean(save_bytes),
        },
        "watchdog": {
            "deadline_aborts": len(deadline_aborts),
            "search_aborts": search_aborts,
            "max_overshoot_seconds": max(
                (
                    abort["wall_seconds"] - abort["deadline"]
                    for abort in deadline_aborts
                ),
                default=0.0,
            ),
            "aborts": deadline_aborts,
        },
        "failover": {
            "crashes": crashes,
            "restores": failover_restores,
            "restore_failures": failover_failures,
            "cold_starts": cold_starts,
            "samples_without_level2": samples_without_level2,
        },
    }


def span_rollup(events: list[dict]) -> dict[str, dict]:
    """Count and total duration per span name."""
    rows: dict[str, dict] = defaultdict(lambda: {"count": 0, "total": 0.0})
    for event in events:
        if event.get("kind") != "span":
            continue
        row = rows[event.get("name", "?")]
        row["count"] += 1
        row["total"] += event.get("dur", 0.0)
    return {
        name: {
            "count": row["count"],
            "total_seconds": row["total"],
            "mean_seconds": row["total"] / row["count"],
        }
        for name, row in sorted(rows.items())
    }


def build_report(events: list[dict]) -> dict:
    """All rollups in one JSON-friendly dict."""
    return {
        "events": len(events),
        "malformed_lines": getattr(events, "malformed_lines", 0),
        "controllers": controller_rollup(events),
        "search": search_rollup(events),
        "efficiency": efficiency_rollup(events),
        "resilience": resilience_rollup(events),
        "checkpoint": checkpoint_rollup(events),
        "spans": span_rollup(events),
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(header), *(len(row[i]) for row in rows)) if rows else len(header)
        for i, header in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render(report: dict) -> str:
    out = [f"telemetry report — {report['events']} events"]
    if report.get("malformed_lines"):
        out.append(
            f"warning: skipped {report['malformed_lines']} malformed "
            "line(s) (truncated trace?)"
        )

    controllers = report["controllers"]
    if controllers:
        out.append("\n== controllers ==")
        out.append(
            _table(
                [
                    "controller",
                    "decisions",
                    "null",
                    "actions",
                    "expansions",
                    "mean dec s",
                    "mean wall s",
                    "watts",
                ],
                [
                    [
                        name,
                        str(row["decisions"]),
                        str(row["null_decisions"]),
                        str(row["actions"]),
                        str(row["total_expansions"]),
                        f"{row['mean_decision_seconds']:.3f}",
                        f"{row['mean_wall_seconds']:.3f}",
                        f"{row['mean_search_watts']:.1f}",
                    ]
                    for name, row in controllers.items()
                ],
            )
        )

    search = report["search"]
    if search.get("runs"):
        out.append("\n== search ==")
        out.append(
            f"runs={search['runs']} (early returns {search['early_returns']}, "
            f"pruning activated in {search['pruning_activated']})"
        )
        out.append(
            f"expansions={search['expansions']}  "
            f"children generated={search['children_generated']} "
            f"pruned={search['children_pruned']} "
            f"(prune rate {search['prune_rate']:.1%})  "
            f"candidates={search['candidates']}"
        )
        out.append(
            f"mean wall={search['mean_wall_seconds']:.4f}s  "
            f"mean decision={search['mean_decision_seconds']:.3f}s"
        )

    efficiency = report["efficiency"]
    if efficiency:
        out.append("\n== caches ==")
        out.append(
            _table(
                ["cache", "hits", "misses", "hit ratio", "evictions"],
                [
                    [
                        name,
                        str(stats["hits"]),
                        str(stats["misses"]),
                        f"{stats['hit_ratio']:.1%}",
                        str(stats["evictions"]),
                    ]
                    for name, stats in efficiency["cache_hit_ratios"].items()
                ],
            )
        )
        estimator = efficiency["estimator"]
        solver = efficiency["solver"]
        perf_pwr = efficiency["perf_pwr"]
        out.append("\n== evaluation paths ==")
        out.append(
            f"estimator: {estimator['evaluations']} evaluations, "
            f"{estimator['incremental_evaluations']} incremental "
            f"({estimator['incremental_share']:.1%}), "
            f"{estimator['memo_hits']} memo hits"
        )
        out.append(
            f"solver: {solver['full_solves']} full vs "
            f"{solver['incremental_solves']} delta solves "
            f"(delta share {solver['delta_share']:.1%}), "
            f"{solver['tiers_resolved']} tiers re-solved"
        )
        out.append(
            f"perf-pwr: {perf_pwr['optimizations']} optimizations, "
            f"{perf_pwr['memo_hits']} memo hits"
        )
        batch = efficiency.get("batch", {})
        if any(batch.values()):
            out.append("\n== solver/batch ==")
            out.append(
                f"batched tier solves: {batch['batch_solves']} calls over "
                f"{batch['batch_configs']} configurations "
                f"({batch['configs_per_batch']:.1f} configs/batch)"
            )
            out.append(
                f"array rounds: {batch['array_rounds']}  "
                f"shm rounds: {batch['shm_rounds']} "
                f"({batch['shm_bytes']} delta bytes published)"
            )
        histogram_rows = [
            [
                name,
                str(histogram.get("count", 0)),
                f"{histogram.get('mean', 0.0):.6f}",
                f"{histogram.get('p50', 0.0):.6f}",
                f"{histogram.get('p90', 0.0):.6f}",
                f"{histogram.get('p99', 0.0):.6f}",
            ]
            for name, histogram in sorted(
                efficiency.get("histograms", {}).items()
            )
            if histogram.get("count")
        ]
        if histogram_rows:
            out.append("\n== efficiency ==")
            out.append(
                _table(
                    ["histogram", "count", "mean s", "p50", "p90", "p99"],
                    histogram_rows,
                )
            )

    resilience = report.get("resilience", {})
    if resilience:
        faults = resilience["faults"]
        recovery = resilience["recovery"]
        degradation = resilience["degradation"]
        out.append("\n== resilience ==")
        action_summary = (
            ", ".join(
                f"{count} {mode}" for mode, count in faults["actions"].items()
            )
            or "none"
        )
        sample_summary = (
            ", ".join(
                f"{count} {mode}" for mode, count in faults["samples"].items()
            )
            or "none"
        )
        out.append(
            f"faults={faults['total']}  actions: {action_summary}  "
            f"host crashes: {faults['host_crashes']}  "
            f"samples: {sample_summary}"
        )
        out.append(
            f"retries={recovery['retries']} "
            f"(mean backoff {recovery['mean_backoff_seconds']:.0f}s)  "
            f"plans aborted={recovery['plans_aborted']}  "
            f"rollbacks={recovery['rollbacks']} "
            f"({recovery['rollback_actions']} undo actions, "
            f"{recovery['rollback_skips']} skipped)"
        )
        out.append(
            f"wasted utility={recovery['wasted_utility']:.2f}  "
            f"replans={degradation['replans']}  "
            f"noop decisions={degradation['noop_decisions']}  "
            f"ladder recoveries={degradation['recoveries']}"
        )
        for entry in degradation["events"]:
            out.append(
                f"  degraded -> {entry['level']} "
                f"[{entry['controller']}] cause={entry['cause']} "
                f"t={entry['t_sim']:.0f}s"
            )
        executors = resilience.get("executors", {})
        if executors and any(executors.values()):
            out.append(
                f"executors: {executors['worker_kills']} worker kills, "
                f"{executors['worker_crashes']} crashes detected, "
                f"{executors['worker_respawns']} pool respawns  "
                f"shm: {executors['shm_corruptions']} corruptions, "
                f"{executors['shm_resyncs']} resyncs"
            )
            out.append(
                f"walkers: {executors['solver_faults']} solver faults, "
                f"{executors['strategy_stalls']} stalls, "
                f"{executors['strategy_failures']} astar fallbacks  "
                f"checkpoints: {executors['checkpoint_corruptions']} rotted, "
                f"{executors['checkpoint_quarantines']} quarantined, "
                f"{executors['checkpoint_rollbacks']} rollbacks  "
                f"invariant violations="
                f"{executors['invariant_violations']}"
            )

    checkpoint = report.get("checkpoint", {})
    if checkpoint:
        saves = checkpoint["checkpoint"]
        watchdog = checkpoint["watchdog"]
        failover = checkpoint["failover"]
        out.append("\n== checkpoint/watchdog ==")
        out.append(
            f"snapshots: {saves['saves']} saved "
            f"(mean {saves['mean_bytes']:.0f} bytes, "
            f"{saves['save_failures']} failed), "
            f"{saves['restores']} restored"
        )
        out.append(
            f"watchdog: {watchdog['deadline_aborts']} deadline aborts, "
            f"{watchdog['search_aborts']} controller aborts, "
            f"max overshoot {watchdog['max_overshoot_seconds']:.3f}s"
        )
        out.append(
            f"failover: {len(failover['crashes'])} controller crashes, "
            f"{len(failover['restores'])} warm restores, "
            f"{failover['cold_starts']} cold starts, "
            f"{failover['restore_failures']} restore failures, "
            f"{failover['samples_without_level2']} samples without level 2"
        )
        for crash in failover["crashes"]:
            warm = "warm" if crash["checkpoint_available"] else "cold"
            out.append(
                f"  crash [{crash['controller']}] t={crash['t_sim']:.0f}s "
                f"down until {crash['down_until']:.0f}s ({warm} restart)"
            )
        for restore in failover["restores"]:
            state = (
                "clean"
                if restore["clean"]
                else f"drift={restore['drift']} -> replan"
            )
            out.append(
                f"  restored [{restore['controller']}] "
                f"t={restore['t_sim']:.0f}s ({state})"
            )

    spans = report["spans"]
    if spans:
        out.append("\n== spans ==")
        out.append(
            _table(
                ["span", "count", "total s", "mean s"],
                [
                    [
                        name,
                        str(row["count"]),
                        f"{row['total_seconds']:.3f}",
                        f"{row['mean_seconds']:.4f}",
                    ]
                    for name, row in spans.items()
                ],
            )
        )
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="telemetry JSONL file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the rollup as JSON instead of tables",
    )
    options = parser.parse_args(argv)
    try:
        events = read_trace(options.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = build_report(events)
    if options.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
