#!/usr/bin/env python
"""Query a telemetry JSONL trace: filter, hotspots, decision drill-down.

Usage::

    # Filter records by name / attribute / time window
    python scripts/trace_query.py trace.jsonl --name "search.*"
    python scripts/trace_query.py trace.jsonl --kind event --attr controller=L1
    python scripts/trace_query.py trace.jsonl --since 10 --until 20

    # Top-N span hotspots by total duration
    python scripts/trace_query.py trace.jsonl --hotspots 10

    # List decisions, then drill into one (1-based index)
    python scripts/trace_query.py trace.jsonl --decisions
    python scripts/trace_query.py trace.jsonl --decision 3

The drill-down prints the decision's ``decision.provenance`` record
(see ``docs/TRACE_SCHEMA.md``): the chosen plan's per-term Eq. 3
utility breakdown, the per-action transient accrual, the top-k
rejected candidates with their rejection reason, and the search stats
— the answer to "why did the controller migrate?".

Reads traces tolerantly: truncated/malformed lines are skipped and
counted, matching ``scripts/telemetry_report.py``.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from collections import defaultdict
from pathlib import Path

#: Trace schema versions this reader understands.
KNOWN_SCHEMA_VERSIONS = {1}

#: Provenance schema versions this reader understands (tracks
#: ``repro.telemetry.provenance.PROVENANCE_SCHEMA``).
KNOWN_PROVENANCE_SCHEMAS = {1}


def read_trace(path: Path) -> tuple[list[dict], int]:
    """Parse a JSONL trace; returns ``(records, malformed_lines)``."""
    records: list[dict] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if not isinstance(record, dict):
                malformed += 1
                continue
            if record.get("v") not in KNOWN_SCHEMA_VERSIONS:
                raise SystemExit(
                    f"error: unsupported trace schema version "
                    f"{record.get('v')!r} in {path}"
                )
            records.append(record)
    return records, malformed


# ---------------------------------------------------------------------------
# filtering
# ---------------------------------------------------------------------------


def parse_attr_filters(pairs: list[str]) -> list[tuple[str, str]]:
    filters = []
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"error: --attr expects key=value, got {pair!r}")
        filters.append((key, value))
    return filters


def matches(
    record: dict,
    name: str | None,
    kind: str | None,
    attr_filters: list[tuple[str, str]],
    since: float | None,
    until: float | None,
) -> bool:
    if kind is not None and record.get("kind") != kind:
        return False
    if name is not None:
        record_name = record.get("name") or ""
        if not (
            fnmatch.fnmatch(record_name, name) or name in record_name
        ):
            return False
    t = record.get("t")
    if since is not None and (t is None or t < since):
        return False
    if until is not None and (t is None or t > until):
        return False
    attrs = record.get("attrs", {})
    for key, expected in attr_filters:
        actual = attrs.get(key)
        if actual is None:
            return False
        if str(actual) != expected:
            return False
    return True


# ---------------------------------------------------------------------------
# hotspots
# ---------------------------------------------------------------------------


def hotspots(records: list[dict], top: int) -> list[dict]:
    """Top span names by total duration."""
    totals: dict[str, dict] = defaultdict(
        lambda: {"count": 0, "total": 0.0, "max": 0.0}
    )
    for record in records:
        if record.get("kind") != "span":
            continue
        row = totals[record.get("name", "?")]
        dur = record.get("dur", 0.0) or 0.0
        row["count"] += 1
        row["total"] += dur
        row["max"] = max(row["max"], dur)
    ranked = sorted(
        totals.items(), key=lambda item: item[1]["total"], reverse=True
    )
    return [
        {
            "name": name,
            "count": row["count"],
            "total_seconds": row["total"],
            "mean_seconds": row["total"] / row["count"],
            "max_seconds": row["max"],
        }
        for name, row in ranked[:top]
    ]


# ---------------------------------------------------------------------------
# decision drill-down
# ---------------------------------------------------------------------------


def decision_spans(records: list[dict]) -> list[dict]:
    spans = [
        record
        for record in records
        if record.get("kind") == "span"
        and record.get("name") == "controller.decision"
    ]
    spans.sort(key=lambda record: record.get("seq", 0))
    return spans


def provenance_for(records: list[dict], span: dict) -> dict | None:
    """The ``decision.provenance`` event emitted inside ``span``."""
    seq = span.get("seq")
    for record in records:
        if (
            record.get("kind") == "event"
            and record.get("name") == "decision.provenance"
            and record.get("parent") == seq
        ):
            return record
    return None


def _fmt_actions(names: list[str]) -> str:
    return " -> ".join(names) if names else "(keep current configuration)"


def render_decision(index: int, span: dict, provenance: dict | None) -> str:
    attrs = span.get("attrs", {})
    out = [
        f"decision #{index}  controller={attrs.get('controller', '?')}  "
        f"t_sim={attrs.get('t_sim', 0.0):g}s  "
        f"window={attrs.get('control_window', 0.0):g}s",
        f"  chosen: {_fmt_actions(attrs.get('actions', []))}",
        f"  predicted_utility={attrs.get('predicted_utility', 0.0):.4f}  "
        f"expansions={attrs.get('expansions', 0)}  "
        f"decision_seconds={attrs.get('decision_seconds', 0.0):.3f}",
    ]
    if provenance is None:
        out.append(
            "  (no decision.provenance record — run with telemetry "
            "provenance collection enabled)"
        )
        return "\n".join(out)
    pattrs = provenance.get("attrs", {})
    schema = pattrs.get("schema")
    if schema not in KNOWN_PROVENANCE_SCHEMAS:
        out.append(
            f"  (provenance schema {schema!r} not supported by this reader)"
        )
        return "\n".join(out)
    utility = pattrs.get("utility", {})
    out.append("  utility breakdown (Eq. 3):")
    for key in (
        "steady",
        "transient",
        "total",
        "transient_perf",
        "transient_power",
        "baseline_utility",
        "delta_vs_current",
        "ideal_bound",
        "heuristic_gap",
        "adaptation_seconds",
        "remaining_seconds",
    ):
        if key in utility:
            out.append(f"    {key:>20}: {utility[key]:.4f}")
    per_action = pattrs.get("per_action", [])
    if per_action:
        out.append("  per-action transient accrual:")
        for step, entry in enumerate(per_action, start=1):
            out.append(
                f"    {step}. {entry.get('action', '?')}: "
                f"duration={entry.get('duration', 0.0):.1f}s "
                f"effective={entry.get('effective_seconds', 0.0):.1f}s "
                f"rate={entry.get('transient_rate', 0.0):.4f} "
                f"utility={entry.get('utility', 0.0):.4f}"
            )
    fault_debit = pattrs.get("fault_debit", 0.0)
    if fault_debit:
        out.append(
            f"  fault debit charged against this decision: "
            f"{fault_debit:.4f}"
        )
    rejected = pattrs.get("rejected", [])
    if rejected:
        out.append("  rejected candidates:")
        for entry in rejected:
            names = entry.get("actions", [])
            detail = f" [{_fmt_actions(names)}]" if names else ""
            count = entry.get("count", 1)
            plural = f" x{count}" if count > 1 else ""
            out.append(
                f"    - {entry.get('reason', '?')}{plural}: "
                f"{entry.get('score_kind', 'score')}="
                f"{entry.get('score', 0.0):.4f}{detail}"
            )
    else:
        out.append("  rejected candidates: none recorded")
    search = pattrs.get("search", {})
    if search:
        out.append(
            "  search: "
            f"expansions={search.get('expansions', 0)} "
            f"generated={search.get('children_generated', 0)} "
            f"pruned={search.get('children_pruned', 0)} "
            f"candidates={search.get('candidates', 0)} "
            f"pruning={search.get('pruning_activated', False)} "
            f"optimal={search.get('optimal', False)} "
            f"deadline_aborted={search.get('deadline_aborted', False)}"
        )
        out.append(
            "          "
            f"self_aware={search.get('self_aware', False)} "
            f"incremental={search.get('incremental', False)} "
            f"parallel={search.get('parallel', False)} "
            f"array_core={search.get('array_core', False)} "
            f"wall={search.get('wall_seconds', 0.0):.4f}s"
        )
        # Walker-produced records carry the backend name plus its own
        # tallies (rollout_steps/tree_nodes for MCTS, accepted_moves/
        # restarts for annealing, ...); print whatever is there so the
        # drill-down identifies the backend without a schema bump.
        known = {
            "expansions", "children_generated", "children_pruned",
            "candidates", "pruning_activated", "optimal", "early_return",
            "deadline_aborted", "self_aware", "incremental", "parallel",
            "array_core", "wall_seconds", "decision_seconds",
        }
        extras = {
            key: value
            for key, value in search.items()
            if key not in known
        }
        if extras:
            strategy = extras.pop("strategy", None)
            parts = [f"strategy={strategy}"] if strategy else []
            parts.extend(
                f"{key}={value}" for key, value in sorted(extras.items())
            )
            out.append("          " + " ".join(parts))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="telemetry JSONL file")
    parser.add_argument(
        "--name", help="record name filter (glob or substring)"
    )
    parser.add_argument(
        "--kind", choices=["span", "event", "meta"], help="record kind"
    )
    parser.add_argument(
        "--attr",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="attribute equality filter (repeatable)",
    )
    parser.add_argument(
        "--since", type=float, help="minimum record time (trace seconds)"
    )
    parser.add_argument(
        "--until", type=float, help="maximum record time (trace seconds)"
    )
    parser.add_argument(
        "--limit", type=int, default=50, help="max filtered records printed"
    )
    parser.add_argument(
        "--hotspots",
        type=int,
        metavar="N",
        help="print the top-N span hotspots by total duration",
    )
    parser.add_argument(
        "--decisions",
        action="store_true",
        help="list controller decisions (index, controller, plan)",
    )
    parser.add_argument(
        "--decision",
        type=int,
        metavar="N",
        help="drill into decision N (1-based; see --decisions)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    options = parser.parse_args(argv)
    attr_filters = parse_attr_filters(options.attr)
    try:
        records, malformed = read_trace(options.trace)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if malformed:
        print(
            f"warning: skipped {malformed} malformed line(s)",
            file=sys.stderr,
        )

    if options.hotspots is not None:
        rows = hotspots(records, options.hotspots)
        if options.json:
            print(json.dumps(rows, indent=2))
        else:
            for row in rows:
                print(
                    f"{row['total_seconds']:10.4f}s  {row['count']:6d}x  "
                    f"mean {row['mean_seconds']:.5f}s  "
                    f"max {row['max_seconds']:.5f}s  {row['name']}"
                )
        return 0

    if options.decisions or options.decision is not None:
        spans = decision_spans(records)
        if options.decision is not None:
            if not 1 <= options.decision <= len(spans):
                print(
                    f"error: decision {options.decision} out of range "
                    f"(trace has {len(spans)})",
                    file=sys.stderr,
                )
                return 1
            span = spans[options.decision - 1]
            provenance = provenance_for(records, span)
            if options.json:
                print(
                    json.dumps(
                        {
                            "decision": span,
                            "provenance": provenance,
                        },
                        indent=2,
                    )
                )
            else:
                print(
                    render_decision(options.decision, span, provenance)
                )
            return 0
        for index, span in enumerate(spans, start=1):
            attrs = span.get("attrs", {})
            print(
                f"#{index}  t_sim={attrs.get('t_sim', 0.0):g}s  "
                f"[{attrs.get('controller', '?')}]  "
                f"{_fmt_actions(attrs.get('actions', []))}"
            )
        if not spans:
            print("no controller.decision spans in trace")
        return 0

    # Plain filter mode.
    selected = [
        record
        for record in records
        if matches(
            record,
            options.name,
            options.kind,
            attr_filters,
            options.since,
            options.until,
        )
    ]
    shown = selected[: options.limit]
    if options.json:
        print(json.dumps(shown, indent=2))
    else:
        for record in shown:
            kind = record.get("kind", "?")
            t = record.get("t", 0.0) or 0.0
            dur = record.get("dur")
            dur_text = f" dur={dur:.5f}s" if dur is not None else ""
            print(
                f"[{t:10.4f}s] {kind:5s} {record.get('name', '?')}"
                f"{dur_text}  attrs={json.dumps(record.get('attrs', {}))}"
            )
    if len(selected) > len(shown):
        print(
            f"... {len(selected) - len(shown)} more "
            "(raise --limit to see them)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
