#!/usr/bin/env python
"""Export a trace's ``metrics.snapshot`` in Prometheus textfile format.

Usage::

    python scripts/metrics_export.py trace.jsonl
    python scripts/metrics_export.py trace.jsonl --output metrics.prom
    python scripts/metrics_export.py trace.jsonl --prefix mistral

Reads the *last* ``metrics.snapshot`` event of a telemetry JSONL trace
(the run's final counter state) and renders it for the node_exporter
textfile collector:

- counters  -> ``<prefix>_<name> TYPE counter``
- gauges    -> ``<prefix>_<name> TYPE gauge``
- histograms -> cumulative ``_bucket{le=...}`` series plus ``_sum`` /
  ``_count`` (native Prometheus histograms), and the snapshot's
  p50/p90/p99 estimates as ``<prefix>_<name>_quantile`` gauges
- caches    -> ``<prefix>_cache_{hits,misses,evictions,entries}``
  with a ``cache`` label per cache name

Metric names are sanitized (dots to underscores).  With ``--output``
the file is written atomically (temp file + rename) so a scraper never
reads a half-written export.

Reads traces tolerantly: malformed lines are skipped, matching
``scripts/telemetry_report.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile
from pathlib import Path

KNOWN_SCHEMA_VERSIONS = {1}

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def read_last_snapshot(path: Path) -> tuple[dict | None, int]:
    """The last ``metrics.snapshot`` payload, plus malformed-line count."""
    snapshot = None
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if not isinstance(record, dict):
                malformed += 1
                continue
            if record.get("v") not in KNOWN_SCHEMA_VERSIONS:
                raise SystemExit(
                    f"error: unsupported trace schema version "
                    f"{record.get('v')!r} in {path}"
                )
            if (
                record.get("kind") == "event"
                and record.get("name") == "metrics.snapshot"
            ):
                snapshot = record.get("attrs", {}).get("metrics")
    return snapshot, malformed


def sanitize(name: str) -> str:
    """A metric name Prometheus accepts: dots/dashes to underscores."""
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """Prometheus sample value (repr keeps full float precision)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(float(value))


def render(snapshot: dict, prefix: str) -> str:
    """The whole snapshot as Prometheus exposition text."""
    lines: list[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = f"{prefix}_{sanitize(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = f"{prefix}_{sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    for name, histogram in sorted(snapshot.get("histograms", {}).items()):
        metric = f"{prefix}_{sanitize(name)}"
        bounds = histogram.get("bounds", [])
        counts = histogram.get("counts", [])
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        total = histogram.get("count", 0)
        lines.append(f'{metric}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{metric}_sum {_fmt(histogram.get('sum', 0.0))}")
        lines.append(f"{metric}_count {total}")
        for quantile_key, quantile in (
            ("p50", "0.5"),
            ("p90", "0.9"),
            ("p99", "0.99"),
        ):
            if quantile_key in histogram:
                lines.append(
                    f'{metric}_quantile{{quantile="{quantile}"}} '
                    f"{_fmt(histogram[quantile_key])}"
                )

    caches = snapshot.get("caches", {})
    if caches:
        for stat in ("hits", "misses", "evictions", "entries", "instances"):
            metric = f"{prefix}_cache_{stat}"
            kind = "gauge" if stat in ("entries", "instances") else "counter"
            lines.append(f"# TYPE {metric} {kind}")
            for name, stats in sorted(caches.items()):
                lines.append(
                    f'{metric}{{cache="{sanitize(name)}"}} '
                    f"{stats.get(stat, 0)}"
                )

    return "\n".join(lines) + "\n"


def write_atomic(path: Path, text: str) -> None:
    """Write via temp file + rename so scrapers never see a torn file."""
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=path.parent if str(path.parent) else ".",
        prefix=f".{path.name}.",
        delete=False,
    )
    try:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(handle.name, path)
    except BaseException:
        handle.close()
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="telemetry JSONL file")
    parser.add_argument(
        "--output",
        type=Path,
        help="write here (atomically) instead of stdout",
    )
    parser.add_argument(
        "--prefix",
        default="mistral",
        help="metric name prefix (default: mistral)",
    )
    options = parser.parse_args(argv)
    try:
        snapshot, malformed = read_last_snapshot(options.trace)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if malformed:
        print(
            f"warning: skipped {malformed} malformed line(s)",
            file=sys.stderr,
        )
    if snapshot is None:
        print(
            f"error: {options.trace} has no metrics.snapshot event "
            "(run with telemetry enabled to completion)",
            file=sys.stderr,
        )
        return 1
    text = render(snapshot, sanitize(options.prefix))
    if options.output is None:
        sys.stdout.write(text)
    else:
        write_atomic(options.output, text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
