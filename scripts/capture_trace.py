#!/usr/bin/env python
"""Run an experiment with telemetry enabled and write a JSONL trace.

Usage::

    python scripts/capture_trace.py --out trace.jsonl                # quick smoke
    python scripts/capture_trace.py --out trace.jsonl --fig10 --horizon 3600
    python scripts/capture_trace.py --out trace.jsonl --faults --horizon 7200
    python scripts/capture_trace.py --out trace.jsonl --crash-at 4 --windows 12

The default mode runs a handful of adaptation searches against the
2-app testbed (fast; CI uses this).  ``--fig10`` runs the Fig. 10
search-cost experiment instead — naive vs. self-aware Mistral on the
real control loop — so the trace contains per-controller decision
spans.  ``--faults`` runs the demo fault scenario from
docs/OPERATIONS.md (scripted migration failures plus a host crash
halfway through the horizon), so the trace carries ``fault.*`` /
``recovery.*`` / ``resilience.*`` events.  ``--crash-at N`` runs the
crash-recovery smoke: checkpoint at monitoring window N, restore a
freshly built controller from the snapshot, continue, and exit 1
unless the stitched decision trace is bit-identical to an
uninterrupted run.  Feed the output to ``scripts/telemetry_report.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry import runtime as telemetry  # noqa: E402


def capture_search_smoke(runs: int) -> None:
    """A few self-aware searches from the consolidated start."""
    from repro.core.search import AdaptationSearch, SearchSettings
    from repro.testbed.scenarios import (
        _global_perf_pwr,
        initial_configuration,
        make_testbed,
    )

    testbed = make_testbed(2, seed=0)
    search = AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=SearchSettings(self_aware=True),
    )
    names = [app.name for app in testbed.applications]
    start = initial_configuration(testbed)
    for run in range(runs):
        workloads = {
            name: 45.0 + 5.0 * index + run
            for index, name in enumerate(names)
        }
        search.perf_pwr.optimize(workloads)
        search.search(start, workloads, 300.0)
    telemetry.emit_metrics_snapshot(mode="search-smoke", runs=runs)


def capture_fig10(horizon: float, app_count: int, seed: int) -> None:
    """The Fig. 10 experiment (naive vs. self-aware control loops)."""
    from repro.experiments.fig10_search_cost import run_fig10

    run_fig10(app_count=app_count, seed=seed, horizon=horizon)


def capture_faults(horizon: float, app_count: int, seed: int) -> None:
    """The demo fault scenario (docs/OPERATIONS.md walkthrough)."""
    from repro.testbed import build_mistral, demo_fault_config, make_testbed

    testbed = make_testbed(app_count, seed=seed)
    controller, initial = build_mistral(testbed)
    metrics = testbed.run(
        controller,
        initial,
        "mistral",
        horizon=horizon,
        faults=demo_fault_config(seed=seed, crash_time=horizon / 2.0),
    )
    stats = metrics.fault_stats
    print(f"cumulative utility: {metrics.cumulative_utility():.2f}")
    print(
        f"faults injected: {stats.total()} "
        f"({stats.action_failures} action failures, "
        f"{stats.host_crashes} host crashes)"
    )


def capture_crash_recovery(
    crash_at: int,
    windows: int,
    app_count: int,
    seed: int,
    snapshot_path: Path,
) -> bool:
    """Crash-restart determinism check (the CI smoke leg).

    Drives the Mistral hierarchy over ``windows`` monitoring windows on
    the noise-free replay loop; a second run checkpoints at window
    ``crash_at``, discards the controller ("crash"), restores a freshly
    built one from the snapshot, and continues.  Returns whether the
    stitched decision trace is bit-identical to the uninterrupted run.
    """
    from repro.checkpoint import (
        CheckpointStore,
        capture,
        drive_windows,
        restore,
        snapshot_configuration,
    )
    from repro.testbed import build_mistral, make_testbed

    if not 0 < crash_at < windows:
        raise SystemExit(
            f"--crash-at must fall inside the run: 0 < {crash_at} < {windows}"
        )
    testbed = make_testbed(app_count, seed=seed)
    interval = testbed.settings.monitoring_interval

    controller, initial = build_mistral(testbed)
    reference, _ = drive_windows(controller, initial, testbed, 0, windows)

    # Interrupted run: drive to the crash point, persist, "die".
    controller, initial = build_mistral(testbed)
    head, configuration = drive_windows(
        controller, initial, testbed, 0, crash_at
    )
    store = CheckpointStore(snapshot_path)
    store.save(
        capture(
            controller,
            configuration=configuration,
            t_sim=crash_at * interval,
        )
    )
    del controller

    # Restart: a freshly built controller warm-starts from disk.
    controller, _ = build_mistral(testbed)
    snapshot = store.load()
    restore(controller, snapshot)
    configuration = snapshot_configuration(snapshot)
    tail, _ = drive_windows(
        controller, configuration, testbed, crash_at, windows
    )

    stitched = head + tail
    matches = stitched == reference
    print(
        f"windows: {windows}, crash at window {crash_at}, "
        f"snapshot: {snapshot_path}"
    )
    print(
        f"decisions: reference {len(reference)}, stitched {len(stitched)}"
    )
    if not matches:
        for index, (ref, got) in enumerate(zip(reference, stitched)):
            if ref != got:
                print(f"first divergence at decision {index}:")
                print(f"  reference: {ref}")
                print(f"  stitched:  {got}")
                break
    print(f"crash-restart determinism: {'PASS' if matches else 'FAIL'}")
    telemetry.emit_metrics_snapshot(
        mode="crash-recovery",
        crash_at=crash_at,
        windows=windows,
        deterministic=matches,
    )
    return matches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("telemetry_trace.jsonl"),
        help="where to write the JSONL trace",
    )
    parser.add_argument(
        "--fig10",
        action="store_true",
        help="trace the Fig. 10 experiment instead of the search smoke",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="trace the demo fault scenario (docs/OPERATIONS.md)",
    )
    parser.add_argument(
        "--crash-at",
        type=int,
        default=None,
        metavar="N",
        help=(
            "crash-recovery smoke: checkpoint at monitoring window N, "
            "restore into a fresh controller, assert the stitched "
            "decision trace is bit-identical (exit 1 otherwise)"
        ),
    )
    parser.add_argument(
        "--windows",
        type=int,
        default=12,
        help="monitoring windows to drive (crash-at mode)",
    )
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=Path("checkpoint.json"),
        help="where the crash-at snapshot is written",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=3600.0,
        help="experiment horizon in simulated seconds (fig10 mode)",
    )
    parser.add_argument(
        "--apps", type=int, default=2, help="system size (fig10 mode)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--runs", type=int, default=3, help="searches (smoke mode)"
    )
    options = parser.parse_args(argv)

    telemetry.enable(jsonl_path=str(options.out))
    deterministic = True
    try:
        if options.crash_at is not None:
            deterministic = capture_crash_recovery(
                options.crash_at,
                options.windows,
                options.apps,
                options.seed,
                options.snapshot,
            )
        elif options.fig10:
            capture_fig10(options.horizon, options.apps, options.seed)
        elif options.faults:
            capture_faults(options.horizon, options.apps, options.seed)
        else:
            capture_search_smoke(options.runs)
    finally:
        telemetry.disable()
    print(f"wrote {options.out}")
    return 0 if deterministic else 1


if __name__ == "__main__":
    raise SystemExit(main())
