#!/usr/bin/env python
"""Check markdown cross-references across the repo's docs.

Walks every tracked ``*.md`` file, extracts inline links, and fails
when a relative link points at a file that does not exist or a
same-file anchor that matches no heading.  External links (http/https/
mailto) are recorded but not fetched — CI must stay hermetic.

Usage::

    python scripts/check_docs.py          # check the whole repo
    python scripts/check_docs.py README.md docs/OPERATIONS.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: Directories never scanned for markdown.
SKIP_DIRS = {".git", ".venv", "__pycache__", ".pytest_cache", "node_modules"}

#: ``[text](target)`` inline links, ignoring images' leading ``!``.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(paths: list[Path]) -> list[Path]:
    """The markdown files to check (explicit paths or the whole repo)."""
    if paths:
        return paths
    found = []
    for path in sorted(ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            found.append(path)
    return found


def anchors_of(path: Path) -> set[str]:
    """Every heading anchor a markdown file defines."""
    return {
        slugify(match) for match in HEADING_RE.findall(path.read_text())
    }


def check_file(path: Path) -> list[str]:
    """Problems found in one markdown file's links."""
    problems = []
    text = path.read_text()
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        base, _, anchor = target.partition("#")
        if not base:
            # Same-file anchor: must match one of this file's headings.
            if anchor and slugify(anchor) not in anchors_of(path):
                problems.append(f"{path.name}: dangling anchor #{anchor}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"{path.name}: broken link {target}")
        elif anchor and resolved.suffix == ".md":
            if slugify(anchor) not in anchors_of(resolved):
                problems.append(
                    f"{path.name}: {base} has no heading for #{anchor}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = [Path(arg).resolve() for arg in (argv or sys.argv[1:])]
    files = markdown_files(args)
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(f"ERROR {problem}")
    print(f"checked {len(files)} markdown files: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
