#!/usr/bin/env python
"""Compare two telemetry traces: phase profiles and decision streams.

Usage::

    python scripts/trace_diff.py baseline.jsonl candidate.jsonl
    python scripts/trace_diff.py a.jsonl b.jsonl --strict   # exit 1 on
                                                            # divergence

Two runs of the same scenario should make the *same decisions* (the
repository's bit-identity contract) while their *timings* drift with
the machine.  This tool separates the two:

- the phase-profile diff aggregates every ``profile.phases`` event per
  trace and prints per-phase wall/CPU totals side by side with the
  candidate/baseline ratio;
- the decision diff walks both ``controller.decision`` streams in
  order and flags the first index where they disagree (controller,
  action sequence, or predicted utility) — the divergence point — then
  summarizes how many decisions follow it.

Reads traces tolerantly (malformed lines skipped and counted), like
``scripts/telemetry_report.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

KNOWN_SCHEMA_VERSIONS = {1}

#: Relative tolerance when comparing predicted utilities: decisions
#: are bit-identical by contract, so any drift at all is a divergence;
#: the epsilon only forgives JSON round-tripping.
UTILITY_RTOL = 1e-12


def read_trace(path: Path) -> tuple[list[dict], int]:
    records: list[dict] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if not isinstance(record, dict):
                malformed += 1
                continue
            if record.get("v") not in KNOWN_SCHEMA_VERSIONS:
                raise SystemExit(
                    f"error: unsupported trace schema version "
                    f"{record.get('v')!r} in {path}"
                )
            records.append(record)
    return records, malformed


# ---------------------------------------------------------------------------
# phase profiles
# ---------------------------------------------------------------------------


def phase_totals(records: list[dict]) -> dict[str, dict]:
    """Aggregate all ``profile.phases`` events of one trace."""
    totals: dict[str, dict] = defaultdict(
        lambda: {"wall": 0.0, "cpu": 0.0, "calls": 0}
    )
    searches = 0
    for record in records:
        if (
            record.get("kind") != "event"
            or record.get("name") != "profile.phases"
        ):
            continue
        searches += 1
        for phase, entry in record.get("attrs", {}).get("phases", {}).items():
            row = totals[phase]
            row["wall"] += entry.get("wall", 0.0)
            row["cpu"] += entry.get("cpu", 0.0)
            row["calls"] += entry.get("calls", 0)
    result = dict(totals)
    result["__searches__"] = {"wall": 0.0, "cpu": 0.0, "calls": searches}
    return result


def diff_phases(baseline: dict, candidate: dict) -> list[dict]:
    names = [name for name in baseline if name != "__searches__"]
    names += [
        name
        for name in candidate
        if name != "__searches__" and name not in baseline
    ]
    rows = []
    for name in names:
        base = baseline.get(name, {"wall": 0.0, "cpu": 0.0, "calls": 0})
        cand = candidate.get(name, {"wall": 0.0, "cpu": 0.0, "calls": 0})
        rows.append(
            {
                "phase": name,
                "baseline_wall": base["wall"],
                "candidate_wall": cand["wall"],
                "wall_ratio": (
                    cand["wall"] / base["wall"] if base["wall"] else None
                ),
                "baseline_cpu": base["cpu"],
                "candidate_cpu": cand["cpu"],
                "baseline_calls": base["calls"],
                "candidate_calls": cand["calls"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# decision streams
# ---------------------------------------------------------------------------


def decision_stream(records: list[dict]) -> list[dict]:
    spans = [
        record
        for record in records
        if record.get("kind") == "span"
        and record.get("name") == "controller.decision"
    ]
    spans.sort(key=lambda record: record.get("seq", 0))
    return [
        {
            "controller": span.get("attrs", {}).get("controller", "?"),
            "t_sim": span.get("attrs", {}).get("t_sim", 0.0),
            "actions": list(span.get("attrs", {}).get("actions", [])),
            "predicted_utility": span.get("attrs", {}).get(
                "predicted_utility", 0.0
            ),
        }
        for span in spans
    ]


def _utilities_differ(a: float, b: float) -> bool:
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) > UTILITY_RTOL * scale


def find_divergence(
    baseline: list[dict], candidate: list[dict]
) -> tuple[int | None, str]:
    """First index (0-based) where the streams disagree, with a reason;
    ``(None, "")`` when they match."""
    for index, (base, cand) in enumerate(zip(baseline, candidate)):
        if base["controller"] != cand["controller"]:
            return index, (
                f"controller {base['controller']!r} vs "
                f"{cand['controller']!r}"
            )
        if base["actions"] != cand["actions"]:
            return index, (
                f"actions {base['actions']} vs {cand['actions']}"
            )
        if _utilities_differ(
            base["predicted_utility"], cand["predicted_utility"]
        ):
            return index, (
                f"predicted_utility {base['predicted_utility']!r} vs "
                f"{cand['predicted_utility']!r}"
            )
    if len(baseline) != len(candidate):
        return min(len(baseline), len(candidate)), (
            f"stream length {len(baseline)} vs {len(candidate)}"
        )
    return None, ""


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="baseline trace JSONL")
    parser.add_argument("candidate", type=Path, help="candidate trace JSONL")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the decision streams diverge",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    options = parser.parse_args(argv)
    try:
        base_records, base_malformed = read_trace(options.baseline)
        cand_records, cand_malformed = read_trace(options.candidate)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for path, malformed in (
        (options.baseline, base_malformed),
        (options.candidate, cand_malformed),
    ):
        if malformed:
            print(
                f"warning: {path}: skipped {malformed} malformed line(s)",
                file=sys.stderr,
            )

    base_phases = phase_totals(base_records)
    cand_phases = phase_totals(cand_records)
    phase_rows = diff_phases(base_phases, cand_phases)

    base_stream = decision_stream(base_records)
    cand_stream = decision_stream(cand_records)
    divergence, reason = find_divergence(base_stream, cand_stream)

    if options.json:
        print(
            json.dumps(
                {
                    "phases": phase_rows,
                    "baseline_searches": base_phases["__searches__"][
                        "calls"
                    ],
                    "candidate_searches": cand_phases["__searches__"][
                        "calls"
                    ],
                    "baseline_decisions": len(base_stream),
                    "candidate_decisions": len(cand_stream),
                    "divergence_index": divergence,
                    "divergence_reason": reason,
                },
                indent=2,
            )
        )
    else:
        print(
            f"phase profiles: baseline "
            f"{base_phases['__searches__']['calls']} searches, candidate "
            f"{cand_phases['__searches__']['calls']} searches"
        )
        if phase_rows:
            header = (
                f"{'phase':>10}  {'base wall':>10}  {'cand wall':>10}  "
                f"{'ratio':>6}  {'base cpu':>10}  {'cand cpu':>10}"
            )
            print(header)
            for row in phase_rows:
                ratio = (
                    f"{row['wall_ratio']:.2f}"
                    if row["wall_ratio"] is not None
                    else "n/a"
                )
                print(
                    f"{row['phase']:>10}  {row['baseline_wall']:10.4f}  "
                    f"{row['candidate_wall']:10.4f}  {ratio:>6}  "
                    f"{row['baseline_cpu']:10.4f}  "
                    f"{row['candidate_cpu']:10.4f}"
                )
        else:
            print("(no profile.phases events in either trace)")
        print(
            f"decisions: baseline {len(base_stream)}, candidate "
            f"{len(cand_stream)}"
        )
        if divergence is None:
            print("decision streams: identical")
        else:
            print(
                f"decision streams DIVERGE at decision "
                f"#{divergence + 1}: {reason}"
            )
            base_entry = (
                base_stream[divergence]
                if divergence < len(base_stream)
                else None
            )
            cand_entry = (
                cand_stream[divergence]
                if divergence < len(cand_stream)
                else None
            )
            for label, entry in (
                ("baseline", base_entry),
                ("candidate", cand_entry),
            ):
                if entry is None:
                    print(f"  {label}: (stream ended)")
                else:
                    print(
                        f"  {label}: t_sim={entry['t_sim']:g}s "
                        f"[{entry['controller']}] "
                        f"{entry['actions'] or 'null decision'} "
                        f"utility={entry['predicted_utility']!r}"
                    )
            remaining = max(
                len(base_stream), len(cand_stream)
            ) - divergence - 1
            if remaining > 0:
                print(f"  ({remaining} decision(s) follow the divergence)")
    if divergence is not None and options.strict:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
