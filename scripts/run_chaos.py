#!/usr/bin/env python
"""Seeded chaos soak over the hardened search stack.

Sweeps fault schedules against the (strategy x executor x array-core)
matrix on the 2-app testbed, with the post-decision invariant checker
refereeing every committed decision:

- three fault schedules — ``infra`` (action failures/stalls, a host
  crash, monitoring drop/stale), ``workers`` (pool-worker SIGKILLs and
  shared-memory corruption), ``persistence`` (checkpoint-write rot,
  injected solver faults, walker stalls against the watchdog);
- chaos cells run every schedule x {astar, mcts} x {serial, process}
  x array-core {off, on}, each with a checkpoint lineage that is
  loaded and restored afterwards (exercising quarantine + ring
  rollback when the newest snapshot rotted);
- control cells run faults-off across the same backend matrix and must
  produce **bit-identical** run traces (utility, power, action records,
  final configuration) per strategy — the hardening layers must cost
  nothing when nothing fails.

The soak fails (non-zero exit) on any invariant violation, any
unhandled exception, any faults-off identity break, or a corrupt
restore that the store failed to refuse.  Results land in
``results/chaos_scorecard.txt`` (folded into EXPERIMENTS.md by
``scripts/build_experiments_md.py``) and the full telemetry trace in a
JSONL file for ``scripts/telemetry_report.py`` / CI artifacts.

Usage::

    python scripts/run_chaos.py                 # full soak
    python scripts/run_chaos.py --smoke         # reduced CI matrix
    python scripts/run_chaos.py --seed 7 --trace /tmp/chaos.jsonl
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.checkpoint import CheckpointError, CheckpointStore, restore
from repro.core.search import SearchSettings
from repro.faults import FaultConfig, HostCrash
from repro.telemetry import runtime as telemetry
from repro.testbed import build_mistral, make_testbed

#: Simulated horizons (seconds): enough monitoring windows for the
#: hierarchy to escape its bands and decide several times.
FULL_HORIZON = 1800.0
SMOKE_HORIZON = 960.0


def fault_schedules(seed: int) -> dict:
    """The named fault schedules, each a seeded :class:`FaultConfig`.

    Seeds are offset per schedule so zeroing one schedule's knobs never
    shifts another's draws (the injector is per-run anyway; the offsets
    keep the schedules visibly independent).
    """
    return {
        # The PR-3 families: the world misbehaves around the controller.
        "infra": FaultConfig(
            seed=seed + 1,
            default_fail_probability=0.15,
            default_stall_probability=0.10,
            sample_drop_probability=0.05,
            sample_stale_probability=0.05,
            host_crashes=(HostCrash(time=1080.0, host_id="host-3"),),
        ),
        # The controller's own execution substrate misbehaves.
        "workers": FaultConfig(
            seed=seed + 2,
            worker_kill_probability=0.25,
            shm_corruption_probability=0.25,
            shm_corruption_mode="flip",
        ),
        # Persistence and the walkers misbehave.
        "persistence": FaultConfig(
            seed=seed + 3,
            checkpoint_corruption_probability=0.30,
            solver_exception_probability=0.05,
            strategy_stall_probability=0.05,
            strategy_stall_seconds=0.05,
        ),
    }


@dataclass
class CellResult:
    """Everything one soak cell produced, for the scorecard."""

    schedule: str  # "none" for control cells
    strategy: str
    executor: str  # "serial" | "process"
    array: bool
    decisions: int = 0
    actions: int = 0
    faults: int = 0
    respawns: int = 0
    strategy_failures: int = 0
    watchdog_aborts: int = 0
    violations: int = 0
    checkpoint: str = "-"  # "ok" | "rolled_back" | "lost" | "-"
    error: Optional[str] = None
    signature: Optional[tuple] = None
    violation_details: list = field(default_factory=list)

    @property
    def label(self) -> str:
        array = "on" if self.array else "off"
        return (
            f"{self.schedule}/{self.strategy}/{self.executor}/array-{array}"
        )


def _controller_stats(controller):
    """Summed ControllerStats across a hierarchy (or one controller)."""
    members = (
        controller.controllers()
        if hasattr(controller, "controllers")
        else [controller]
    )
    totals = {
        "decisions": 0,
        "worker_respawns": 0,
        "strategy_failures": 0,
        "watchdog_aborts": 0,
    }
    for member in members:
        stats = getattr(member, "stats", None)
        if stats is None:
            continue
        for key in totals:
            totals[key] += getattr(stats, key, 0)
    return totals


def _signature(metrics) -> tuple:
    """The bit-identity fingerprint of one run's decision trace."""
    return (
        tuple(metrics.utility_increments.values),
        tuple(metrics.power_watts.values),
        tuple(metrics.hosts_powered.values),
        tuple(
            (record.start, record.end, record.controller, record.description)
            for record in metrics.actions
        ),
        repr(metrics.final_configuration),
    )


def _verify_checkpoint(testbed, path: Path, result: CellResult) -> None:
    """Load + restore the cell's checkpoint lineage after the run.

    A rotted head must quarantine and roll back to an older generation;
    only when every retained generation rotted may the store refuse
    (``lost`` — the correct refusal, not a failure).  A load that
    *returns* but fails to restore is a real failure.
    """
    store = CheckpointStore(path)
    try:
        snapshot = store.load()
    except CheckpointError:
        result.checkpoint = f"lost({len(store.quarantined())}q)"
        return
    fresh, _ = build_mistral(testbed)
    fresh.enable_resilience()
    restore(fresh, snapshot)  # raises on a corrupt/partial restore
    quarantined = len(store.quarantined())
    result.checkpoint = f"rolled_back({quarantined}q)" if quarantined else "ok"


def run_cell(
    testbed,
    result: CellResult,
    faults: Optional[FaultConfig],
    horizon: float,
    checkpoint_dir: Optional[Path],
    search_settings: Optional[SearchSettings],
) -> CellResult:
    if result.executor == "process":
        # ``parallel_executor="auto"`` resolves to serial on
        # single-core machines, which would silently skip the pool
        # surfaces these cells exist to exercise — pin the kind.
        search_settings = replace(
            search_settings or SearchSettings(),
            parallel_executor="process",
        )
    controller, initial = build_mistral(
        testbed, search_settings=search_settings
    )
    workers = 2 if result.executor == "process" else None
    checkpoint = None
    if checkpoint_dir is not None:
        safe = result.label.replace("/", "_")
        checkpoint = checkpoint_dir / f"{safe}.json"
    try:
        metrics = testbed.run(
            controller,
            initial,
            "mistral",
            horizon=horizon,
            faults=faults,
            parallel=workers,
            checkpoint=checkpoint,
            search_strategy=result.strategy,
            array_core=result.array,
            invariants=True,
        )
    except Exception as error:  # noqa: BLE001 - the soak's whole point
        result.error = f"{type(error).__name__}: {error}"
        traceback.print_exc()
        return result
    stats = _controller_stats(controller)
    result.decisions = stats["decisions"]
    result.respawns = stats["worker_respawns"]
    result.strategy_failures = stats["strategy_failures"]
    result.watchdog_aborts = stats["watchdog_aborts"]
    result.actions = metrics.action_count()
    result.faults = (
        metrics.fault_stats.total() if metrics.fault_stats else 0
    )
    result.violations = len(metrics.invariant_violations)
    result.violation_details = [
        f"{violation.name}: {violation.detail}"
        for violation in metrics.invariant_violations
    ]
    result.signature = _signature(metrics)
    if checkpoint is not None:
        try:
            _verify_checkpoint(testbed, checkpoint, result)
        except Exception as error:  # noqa: BLE001
            result.error = f"checkpoint: {type(error).__name__}: {error}"
            traceback.print_exc()
    return result


def build_matrix(smoke: bool) -> tuple[list, list]:
    """(control cells, chaos cell specs) for the requested depth.

    Control cells run faults-off; within each strategy every backend
    combination must produce a bit-identical trace.  The smoke matrix
    keeps one backend pair per strategy for identity plus every
    schedule on the widest backend (process + array core).
    """
    strategies = ["astar", "mcts"]
    full_backends = [
        ("serial", False),
        ("serial", True),
        ("process", False),
        ("process", True),
    ]
    if smoke:
        control_backends = [("serial", False), ("process", True)]
        chaos_backends = [("process", True)]
    else:
        control_backends = full_backends
        chaos_backends = full_backends
    controls = [
        CellResult("none", strategy, executor, array)
        for strategy in strategies
        for executor, array in control_backends
    ]
    chaos = [
        (schedule, CellResult(schedule, strategy, executor, array))
        for schedule in ("infra", "workers", "persistence")
        for strategy in strategies
        for executor, array in chaos_backends
    ]
    return controls, chaos


def identity_check(controls: list) -> tuple[bool, list]:
    """Per strategy: every faults-off backend matches the serial-scalar
    reference signature."""
    ok = True
    notes = []
    by_strategy: dict[str, list] = {}
    for cell in controls:
        by_strategy.setdefault(cell.strategy, []).append(cell)
    for strategy, cells in by_strategy.items():
        reference = next(
            (
                cell
                for cell in cells
                if cell.executor == "serial" and not cell.array
            ),
            cells[0],
        )
        for cell in cells:
            if cell.error or reference.error:
                ok = False
                continue
            if cell.signature != reference.signature:
                ok = False
                notes.append(
                    f"{cell.label} diverges from {reference.label}"
                )
    return ok, notes


def scorecard(
    results: list,
    checks: dict,
    seed: int,
    horizon: float,
    smoke: bool,
) -> str:
    depth = "smoke matrix" if smoke else "full soak"
    lines = [
        "Chaos harness resilience scorecard — seeded fault schedules vs "
        "the hardened search stack "
        f"({depth}, seed {seed}, horizon {horizon:.0f}s)",
        f"{'cell':<36} {'decisions':>9} {'actions':>7} {'faults':>6} "
        f"{'respawns':>8} {'fallbacks':>9} {'aborts':>6} {'viol':>4} "
        f"{'checkpoint':<15} {'status':<8}",
        "-" * 126,
    ]
    for cell in results:
        status = "ERROR" if cell.error else "ok"
        lines.append(
            f"{cell.label:<36} {cell.decisions:>9} {cell.actions:>7} "
            f"{cell.faults:>6} {cell.respawns:>8} "
            f"{cell.strategy_failures:>9} {cell.watchdog_aborts:>6} "
            f"{cell.violations:>4} {cell.checkpoint:<15} {status:<8}"
        )
        if cell.error:
            lines.append(f"    {cell.error}")
        for detail in cell.violation_details:
            lines.append(f"    violation: {detail}")
    lines += [
        "",
        "Control cells (schedule 'none') run faults-off and must be "
        "bit-identical per strategy across every backend; chaos cells "
        "must absorb every injected fault with zero invariant "
        "violations.  'checkpoint' reports the post-run restore of the "
        "cell's snapshot lineage: ok, rolled_back(Nq) after quarantine, "
        "or lost(Nq) when every retained generation rotted (the store's "
        "correct refusal).",
        "checks: "
        + ", ".join(f"{name}={value}" for name, value in checks.items()),
    ]
    return "\n".join(lines) + "\n"


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix + horizon for the CI smoke leg",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base fault-schedule seed"
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="override the simulated horizon (seconds)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "results" / "chaos_scorecard.txt",
        help="where the scorecard block is written",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=REPO_ROOT / "chaos_trace.jsonl",
        help="JSONL telemetry trace of the whole soak",
    )
    args = parser.parse_args(argv)
    horizon = args.horizon or (
        SMOKE_HORIZON if args.smoke else FULL_HORIZON
    )

    testbed = make_testbed(app_count=2, seed=0)
    schedules = fault_schedules(args.seed)
    controls, chaos = build_matrix(args.smoke)
    # Chaos cells get a watchdog deadline (so injected stalls have a
    # tripwire to hit) and zero respawn backoff (the soak cares about
    # the paths, not the waiting).  Control cells run the stock
    # settings: their traces define the bit-identity reference.
    chaos_settings = SearchSettings(
        deadline_seconds=2.0,
        executor_respawn_backoff_seconds=0.0,
    )

    results: list = []
    telemetry.enable(jsonl_path=str(args.trace))
    try:
        with tempfile.TemporaryDirectory(prefix="chaos-ckpt-") as tmp:
            checkpoint_dir = Path(tmp)
            for cell in controls:
                print(f"control  {cell.label} ...", flush=True)
                results.append(
                    run_cell(testbed, cell, None, horizon, None, None)
                )
            for schedule, cell in chaos:
                print(f"chaos    {cell.label} ...", flush=True)
                results.append(
                    run_cell(
                        testbed,
                        cell,
                        schedules[schedule],
                        horizon,
                        checkpoint_dir,
                        chaos_settings,
                    )
                )
    finally:
        telemetry.flush()
        telemetry.disable()

    control_results = [cell for cell in results if cell.schedule == "none"]
    chaos_results = [cell for cell in results if cell.schedule != "none"]
    identical, identity_notes = identity_check(control_results)
    injected_per_schedule = {
        name: sum(
            cell.faults
            for cell in chaos_results
            if cell.schedule == name
        )
        for name in schedules
    }
    checks = {
        "faults_off_bit_identical": identical,
        "zero_invariant_violations": all(
            cell.violations == 0 for cell in results
        ),
        "zero_unhandled_exceptions": all(
            cell.error is None for cell in results
        ),
        "every_schedule_injected_faults": all(
            count > 0 for count in injected_per_schedule.values()
        ),
        "checkpoints_survived_or_refused": all(
            cell.checkpoint != "-" for cell in chaos_results
        ),
    }

    block = scorecard(results, checks, args.seed, horizon, args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(block, encoding="utf-8")
    print()
    print(block, end="")
    print(f"wrote {args.output}")
    print(f"trace at {args.trace}")
    for note in identity_notes:
        print(f"identity: {note}", file=sys.stderr)
    if not all(checks.values()):
        failed = [name for name, value in checks.items() if not value]
        print(f"FAILED checks: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
